//! Per-stage instrumentation for evaluation runs.
//!
//! [`EvalMetrics`] is a lock-free sink of counters and stage timers that
//! [`crate::pipeline::FinSql::answer_with_metrics`] feeds while answering:
//! schema-linking / generation / calibration wall time, candidate counts,
//! calibration repair activity, and parse failures. One sink is shared by
//! every evaluation worker (all fields are atomic), and a [`MetricsSnapshot`]
//! renders the totals — the bench binaries print it after each table row,
//! including questions/sec against the measured wall time.

use crate::calibrate::CalibrationStats;
use simllm::GenCounters;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram buckets: power-of-two nanosecond ranges, bucket `i`
/// covering `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns). 64
/// buckets span every representable `u64` nanosecond count.
const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-size, lock-free, log-bucketed latency histogram.
///
/// `record` is allocation-free — one leading-zeros instruction plus one
/// relaxed atomic increment — so it can sit on the serving hot path.
/// Power-of-two buckets bound the quantile error to 2× (the reported
/// quantile is the *upper edge* of its bucket, so SLO reads are
/// conservative: the true latency is never above what is reported by
/// more than nothing, and never below it by more than half).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// The bucket index of a nanosecond count: `floor(log2(nanos))`.
fn bucket_index(nanos: u64) -> usize {
    (u64::BITS - nanos.leading_zeros()).saturating_sub(1) as usize
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation (relaxed atomic, no allocation).
    pub fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot(std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)))
    }
}

/// Plain bucket counts of a [`LatencyHistogram`], with quantile readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot(pub [u64; HISTOGRAM_BUCKETS]);

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot([0; HISTOGRAM_BUCKETS])
    }
}

impl HistogramSnapshot {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        let mut total = 0u64;
        for &c in self.0.iter() {
            total += c;
        }
        total
    }

    /// The latency at quantile `q` in `[0, 1]`: the upper edge of the
    /// first bucket whose cumulative count reaches `q * count` (a
    /// conservative — never underestimating — SLO read). Zero when
    /// nothing was recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.0.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i + 1 >= HISTOGRAM_BUCKETS {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(upper);
            }
        }
        Duration::from_nanos(u64::MAX)
    }

    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }
}

/// Shared counters for one evaluation run. All updates are `Relaxed`
/// atomics: the totals are only read after the worker pool has joined.
#[derive(Debug, Default)]
pub struct EvalMetrics {
    questions: AtomicU64,
    link_nanos: AtomicU64,
    gen_nanos: AtomicU64,
    calibrate_nanos: AtomicU64,
    candidates: AtomicU64,
    parse_failures: AtomicU64,
    repairs: AtomicU64,
    dropped_unresolved: AtomicU64,
    calibration_fallbacks: AtomicU64,
    generator_fallbacks: AtomicU64,
    skeleton_slips: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    admission_rejected: AtomicU64,
    latency: LatencyHistogram,
    batches: AtomicU64,
    batched_questions: AtomicU64,
    max_batch: AtomicU64,
    mixed_batches: AtomicU64,
    link_examples: AtomicU64,
    link_table_hits: AtomicU64,
    link_column_hits: AtomicU64,
    live_appends: AtomicU64,
    live_rows: AtomicU64,
}

impl EvalMetrics {
    pub fn new() -> Self {
        EvalMetrics::default()
    }

    /// Records one answered question.
    pub fn record_question(&self) {
        self.questions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the schema-linking stage of one question.
    pub fn record_link(&self, elapsed: Duration) {
        self.link_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records the generation stage of one question.
    pub fn record_generation(&self, elapsed: Duration, counters: &GenCounters) {
        self.gen_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.candidates.fetch_add(counters.samples, Ordering::Relaxed);
        self.generator_fallbacks.fetch_add(counters.fallbacks, Ordering::Relaxed);
        self.skeleton_slips.fetch_add(counters.skeleton_slips, Ordering::Relaxed);
    }

    /// Records the calibration stage of one question. `fell_back` marks a
    /// question whose calibration produced nothing and the raw first
    /// candidate was returned instead.
    pub fn record_calibration(&self, elapsed: Duration, stats: &CalibrationStats, fell_back: bool) {
        self.calibrate_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.parse_failures.fetch_add(stats.parse_failures as u64, Ordering::Relaxed);
        self.repairs.fetch_add(stats.repairs as u64, Ordering::Relaxed);
        self.dropped_unresolved.fetch_add(stats.dropped_unresolved as u64, Ordering::Relaxed);
        if fell_back {
            self.calibration_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one question served straight from the answer cache (no
    /// pipeline stage ran).
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache miss (the question was computed and the cache
    /// filled), with the evictions that fill performed.
    pub fn record_cache_miss(&self, evictions: u64) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.cache_evictions.fetch_add(evictions, Ordering::Relaxed);
    }

    /// Records one cache fill turned away by the TinyLFU admission duel
    /// (the computed answer was served, the cache kept its hotter
    /// resident instead).
    pub fn record_admission_rejected(&self) {
        self.admission_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one end-to-end answer latency: the full pipeline time on
    /// the per-question path, or enqueue-to-answer on the scheduler path.
    pub fn record_answer_latency(&self, elapsed: Duration) {
        self.latency.record(elapsed);
    }

    /// Records one micro-batch of `size` questions answered through the
    /// batched engine (the per-question counters are recorded separately
    /// by the stages themselves).
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_questions.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Records one scheduler micro-batch that spanned more than one
    /// database (and was split into per-db sub-batches by the engine).
    pub fn record_mixed_batch(&self) {
        self.mixed_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records linking recall for one labelled example: whether every
    /// gold table survived the top-`k_tables` projection and whether
    /// every gold column survived the top-`k_columns` projection of its
    /// own table — the per-example recall@k events of the paper's
    /// Table 7, measured on the *serving* linker configuration.
    pub fn record_link_recall(&self, tables_covered: bool, columns_covered: bool) {
        self.link_examples.fetch_add(1, Ordering::Relaxed);
        if tables_covered {
            self.link_table_hits.fetch_add(1, Ordering::Relaxed);
        }
        if columns_covered {
            self.link_column_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records live-append traffic absorbed by a runtime: `records`
    /// change records carrying `rows` rows in total. Each absorbed
    /// record is one epoch bump, so `live_appends` is also the number of
    /// epoch transitions the run served across.
    pub fn record_append(&self, records: u64, rows: u64) {
        self.live_appends.fetch_add(records, Ordering::Relaxed);
        self.live_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// A consistent copy of the totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            questions: self.questions.load(Ordering::Relaxed),
            link_time: Duration::from_nanos(self.link_nanos.load(Ordering::Relaxed)),
            gen_time: Duration::from_nanos(self.gen_nanos.load(Ordering::Relaxed)),
            calibrate_time: Duration::from_nanos(self.calibrate_nanos.load(Ordering::Relaxed)),
            candidates: self.candidates.load(Ordering::Relaxed),
            parse_failures: self.parse_failures.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            dropped_unresolved: self.dropped_unresolved.load(Ordering::Relaxed),
            calibration_fallbacks: self.calibration_fallbacks.load(Ordering::Relaxed),
            generator_fallbacks: self.generator_fallbacks.load(Ordering::Relaxed),
            skeleton_slips: self.skeleton_slips.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            batches: self.batches.load(Ordering::Relaxed),
            batched_questions: self.batched_questions.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            mixed_batches: self.mixed_batches.load(Ordering::Relaxed),
            link_examples: self.link_examples.load(Ordering::Relaxed),
            link_table_hits: self.link_table_hits.load(Ordering::Relaxed),
            link_column_hits: self.link_column_hits.load(Ordering::Relaxed),
            live_appends: self.live_appends.load(Ordering::Relaxed),
            live_rows: self.live_rows.load(Ordering::Relaxed),
        }
    }
}

/// Plain totals of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub questions: u64,
    pub link_time: Duration,
    pub gen_time: Duration,
    pub calibrate_time: Duration,
    /// Candidate SQL strings sampled across all questions.
    pub candidates: u64,
    /// Candidates that failed to parse during calibration.
    pub parse_failures: u64,
    /// Individual `f1` repairs applied (table/join/column fixes).
    pub repairs: u64,
    /// Candidates dropped by the column-resolution gate.
    pub dropped_unresolved: u64,
    /// Questions where calibration yielded nothing and the raw first
    /// candidate was used.
    pub calibration_fallbacks: u64,
    /// Samples that fell back to the unadapted template generator.
    pub generator_fallbacks: u64,
    /// Samples whose skeleton slipped to the runner-up prototype.
    pub skeleton_slips: u64,
    /// Questions served straight from the answer cache.
    pub cache_hits: u64,
    /// Questions that missed the cache and were computed (and filled).
    pub cache_misses: u64,
    /// Cache entries evicted by capacity pressure during this run.
    pub cache_evictions: u64,
    /// Cache fills rejected by the TinyLFU admission filter.
    pub admission_rejected: u64,
    /// End-to-end answer latency distribution (per-question pipeline
    /// time, or enqueue-to-answer on the scheduler path).
    pub latency: HistogramSnapshot,
    /// Micro-batches answered through the batched engine.
    pub batches: u64,
    /// Questions answered inside those micro-batches.
    pub batched_questions: u64,
    /// Largest micro-batch seen.
    pub max_batch: u64,
    /// Micro-batches that spanned more than one database.
    pub mixed_batches: u64,
    /// Labelled examples whose linking recall was measured.
    pub link_examples: u64,
    /// Examples with every gold table inside the top-`k_tables`.
    pub link_table_hits: u64,
    /// Examples with every gold column inside the top-`k_columns` of its
    /// own table.
    pub link_column_hits: u64,
    /// Live change records absorbed during the run (= epoch bumps).
    pub live_appends: u64,
    /// Rows those change records carried.
    pub live_rows: u64,
}

impl MetricsSnapshot {
    /// Questions served: computed through the pipeline plus answered
    /// straight from the cache.
    pub fn served(&self) -> u64 {
        self.questions + self.cache_hits
    }

    /// Questions served per second of wall time.
    pub fn questions_per_sec(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.served() as f64 / wall.as_secs_f64()
        }
    }

    /// Fraction of served questions answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Mean questions per micro-batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_questions as f64 / self.batches as f64
        }
    }

    /// Embedding passes amortised away by batching: every question of a
    /// micro-batch beyond the first shares the batch's single
    /// embed-and-rank sweep instead of paying its own.
    pub fn amortised_embeds(&self) -> u64 {
        self.batched_questions.saturating_sub(self.batches)
    }

    /// Fraction of measured examples whose gold tables all survived the
    /// top-`k_tables` projection.
    pub fn link_table_recall(&self) -> f64 {
        if self.link_examples == 0 {
            0.0
        } else {
            self.link_table_hits as f64 / self.link_examples as f64
        }
    }

    /// Fraction of measured examples whose gold columns all survived the
    /// top-`k_columns` projection of their own table.
    pub fn link_column_recall(&self) -> f64 {
        if self.link_examples == 0 {
            0.0
        } else {
            self.link_column_hits as f64 / self.link_examples as f64
        }
    }

    /// Mean per-question time of one stage.
    fn per_question(&self, stage: Duration) -> Duration {
        stage.checked_div(u32::try_from(self.questions.max(1)).unwrap_or(u32::MAX))
            .unwrap_or_default()
    }

    /// Multi-line report, the format the bench binaries print:
    /// a throughput line plus one line per stage and counter.
    pub fn report(&self, wall: Duration) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {} questions in {:.2?}  ({:.1} questions/sec)\n",
            self.served(),
            wall,
            self.questions_per_sec(wall)
        ));
        if self.cache_hits + self.cache_misses > 0 {
            out.push_str(&format!(
                "  {:<22} {:>10}  (hit rate {:.1}%)\n",
                "cache hits",
                self.cache_hits,
                self.cache_hit_rate() * 100.0
            ));
            out.push_str(&format!("  {:<22} {:>10}\n", "cache misses", self.cache_misses));
            out.push_str(&format!("  {:<22} {:>10}\n", "cache evictions", self.cache_evictions));
            if self.admission_rejected > 0 {
                out.push_str(&format!(
                    "  {:<22} {:>10}\n",
                    "admission rejected", self.admission_rejected
                ));
            }
        }
        if self.latency.count() > 0 {
            out.push_str(&format!(
                "  {:<22} p50 {:>9.2?}  p99 {:>9.2?}  p999 {:>9.2?}  ({} samples)\n",
                "answer latency",
                self.latency.p50(),
                self.latency.p99(),
                self.latency.p999(),
                self.latency.count()
            ));
        }
        if self.batches > 0 {
            out.push_str(&format!(
                "  {:<22} {:>10}  (mean size {:.1}, max {})\n",
                "micro-batches",
                self.batches,
                self.mean_batch_size(),
                self.max_batch
            ));
            out.push_str(&format!(
                "  {:<22} {:>10}\n",
                "amortised embeds",
                self.amortised_embeds()
            ));
            if self.mixed_batches > 0 {
                out.push_str(&format!(
                    "  {:<22} {:>10}\n",
                    "mixed-db batches", self.mixed_batches
                ));
            }
        }
        if self.live_appends > 0 {
            out.push_str(&format!(
                "  {:<22} {:>10}  ({} rows)\n",
                "live appends", self.live_appends, self.live_rows
            ));
        }
        if self.link_examples > 0 {
            out.push_str(&format!(
                "  {:<22} {:>10}  ({}/{} examples)\n",
                "link table recall",
                format!("{:.1}%", self.link_table_recall() * 100.0),
                self.link_table_hits,
                self.link_examples
            ));
            out.push_str(&format!(
                "  {:<22} {:>10}  ({}/{} examples)\n",
                "link column recall",
                format!("{:.1}%", self.link_column_recall() * 100.0),
                self.link_column_hits,
                self.link_examples
            ));
        }
        for (name, stage) in [
            ("linking", self.link_time),
            ("generation", self.gen_time),
            ("calibration", self.calibrate_time),
        ] {
            out.push_str(&format!(
                "  {name:<22} {:>10.2?}  ({:.2?}/q)\n",
                stage,
                self.per_question(stage)
            ));
        }
        out.push_str(&format!(
            "  {:<22} {:>10}  ({:.1}/q)\n",
            "candidates",
            self.candidates,
            self.candidates as f64 / self.questions.max(1) as f64
        ));
        for (name, count) in [
            ("parse failures", self.parse_failures),
            ("repairs applied", self.repairs),
            ("dropped (unresolved)", self.dropped_unresolved),
            ("calibration fallbacks", self.calibration_fallbacks),
            ("generator fallbacks", self.generator_fallbacks),
            ("skeleton slips", self.skeleton_slips),
        ] {
            out.push_str(&format!("  {name:<22} {count:>10}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_stages() {
        let m = EvalMetrics::new();
        for _ in 0..3 {
            m.record_question();
        }
        m.record_link(Duration::from_millis(4));
        m.record_link(Duration::from_millis(6));
        m.record_generation(
            Duration::from_millis(20),
            &GenCounters { samples: 5, fallbacks: 1, skeleton_slips: 2 },
        );
        m.record_generation(
            Duration::from_millis(10),
            &GenCounters { samples: 5, fallbacks: 0, skeleton_slips: 0 },
        );
        m.record_calibration(
            Duration::from_millis(2),
            &CalibrationStats { candidates: 5, parse_failures: 2, repairs: 3, dropped_unresolved: 1, rescued: false },
            true,
        );
        let s = m.snapshot();
        assert_eq!(s.questions, 3);
        assert_eq!(s.link_time, Duration::from_millis(10));
        assert_eq!(s.gen_time, Duration::from_millis(30));
        assert_eq!(s.calibrate_time, Duration::from_millis(2));
        assert_eq!(s.candidates, 10);
        assert_eq!(s.parse_failures, 2);
        assert_eq!(s.repairs, 3);
        assert_eq!(s.dropped_unresolved, 1);
        assert_eq!(s.calibration_fallbacks, 1);
        assert_eq!(s.generator_fallbacks, 1);
        assert_eq!(s.skeleton_slips, 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = EvalMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        m.record_question();
                        m.record_link(Duration::from_nanos(100));
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.questions, 1000);
        assert_eq!(snap.link_time, Duration::from_nanos(100_000));
    }

    #[test]
    fn cache_counters_feed_served_and_hit_rate() {
        let m = EvalMetrics::new();
        for _ in 0..2 {
            m.record_question();
        }
        for _ in 0..6 {
            m.record_cache_hit();
        }
        m.record_cache_miss(3);
        m.record_cache_miss(0);
        let s = m.snapshot();
        assert_eq!(s.cache_hits, 6);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_evictions, 3);
        assert_eq!(s.served(), 8);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-9);
        let report = s.report(Duration::from_secs(1));
        assert!(report.contains("cache hits"));
        assert!(report.contains("hit rate 75.0%"));
    }

    #[test]
    fn report_omits_cache_lines_without_cache_traffic() {
        let m = EvalMetrics::new();
        m.record_question();
        let report = m.snapshot().report(Duration::from_secs(1));
        assert!(!report.contains("cache hits"));
    }

    #[test]
    fn batch_counters_and_report_lines() {
        let m = EvalMetrics::new();
        m.record_batch(4);
        m.record_batch(8);
        m.record_batch(1);
        let s = m.snapshot();
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_questions, 13);
        assert_eq!(s.max_batch, 8);
        assert!((s.mean_batch_size() - 13.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.amortised_embeds(), 10);
        let report = s.report(Duration::from_secs(1));
        assert!(report.contains("micro-batches"));
        assert!(report.contains("amortised embeds"));
        let plain = EvalMetrics::new();
        plain.record_question();
        assert!(!plain.snapshot().report(Duration::from_secs(1)).contains("micro-batches"));
    }

    #[test]
    fn link_recall_counters_and_report_lines() {
        let m = EvalMetrics::new();
        m.record_link_recall(true, true);
        m.record_link_recall(true, false);
        m.record_link_recall(false, false);
        m.record_link_recall(true, true);
        let s = m.snapshot();
        assert_eq!(s.link_examples, 4);
        assert_eq!(s.link_table_hits, 3);
        assert_eq!(s.link_column_hits, 2);
        assert!((s.link_table_recall() - 0.75).abs() < 1e-9);
        assert!((s.link_column_recall() - 0.5).abs() < 1e-9);
        let report = s.report(Duration::from_secs(1));
        assert!(report.contains("link table recall"));
        assert!(report.contains("link column recall"));
        assert!(report.contains("75.0%"));
        let plain = EvalMetrics::new();
        plain.record_question();
        let r = plain.snapshot().report(Duration::from_secs(1));
        assert!(!r.contains("link table recall"));
        assert_eq!(plain.snapshot().link_table_recall(), 0.0);
    }

    #[test]
    fn mixed_batch_counter_and_report_line() {
        let m = EvalMetrics::new();
        m.record_batch(4);
        m.record_mixed_batch();
        m.record_mixed_batch();
        let s = m.snapshot();
        assert_eq!(s.mixed_batches, 2);
        assert!(s.report(Duration::from_secs(1)).contains("mixed-db batches"));
        let pure = EvalMetrics::new();
        pure.record_batch(4);
        assert!(!pure.snapshot().report(Duration::from_secs(1)).contains("mixed-db batches"));
    }

    #[test]
    fn append_counters_and_report_line() {
        let m = EvalMetrics::new();
        m.record_append(2, 12);
        m.record_append(1, 6);
        let s = m.snapshot();
        assert_eq!(s.live_appends, 3);
        assert_eq!(s.live_rows, 18);
        assert!(s.report(Duration::from_secs(1)).contains("live appends"));
        let frozen = EvalMetrics::new();
        frozen.record_question();
        assert!(!frozen.snapshot().report(Duration::from_secs(1)).contains("live appends"));
    }

    #[test]
    fn histogram_buckets_by_powers_of_two_and_reads_conservative_quantiles() {
        let h = LatencyHistogram::new();
        // 90 fast observations in [1024, 2047] ns, 9 at ~1 µs–2 µs above,
        // 1 slow outlier: p50 must read the fast bucket's upper edge,
        // p999 the outlier's.
        for _ in 0..90 {
            h.record(Duration::from_nanos(1500));
        }
        for _ in 0..9 {
            h.record(Duration::from_nanos(3000));
        }
        h.record(Duration::from_micros(1000));
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), Duration::from_nanos(2047));
        assert_eq!(s.quantile(0.95), Duration::from_nanos(4095));
        // 1 ms = 1_000_000 ns sits in bucket 19 ([2^19, 2^20)).
        assert_eq!(s.p999(), Duration::from_nanos((1 << 20) - 1));
        assert!(s.p50() <= s.p99() && s.p99() <= s.p999());
    }

    #[test]
    fn histogram_edge_cases() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().p50(), Duration::ZERO, "empty histogram reads zero");
        h.record(Duration::ZERO);
        h.record(Duration::from_nanos(1));
        let s = h.snapshot();
        assert_eq!(s.0[0], 2, "0 ns and 1 ns share the first bucket");
        assert_eq!(s.p999(), Duration::from_nanos(1));
        // Saturates instead of overflowing on absurd durations.
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000));
        assert!(h.snapshot().count() == 3);
    }

    #[test]
    fn latency_and_admission_feed_snapshot_and_report() {
        let m = EvalMetrics::new();
        m.record_cache_hit();
        m.record_cache_miss(0);
        m.record_admission_rejected();
        for us in [100u64, 200, 400] {
            m.record_answer_latency(Duration::from_micros(us));
        }
        let s = m.snapshot();
        assert_eq!(s.admission_rejected, 1);
        assert_eq!(s.latency.count(), 3);
        let report = s.report(Duration::from_secs(1));
        assert!(report.contains("admission rejected"));
        assert!(report.contains("answer latency"));
        assert!(report.contains("p999"));
        let quiet = EvalMetrics::new();
        quiet.record_question();
        let r = quiet.snapshot().report(Duration::from_secs(1));
        assert!(!r.contains("answer latency"));
        assert!(!r.contains("admission rejected"));
    }

    #[test]
    fn throughput_and_report_shape() {
        let m = EvalMetrics::new();
        for _ in 0..10 {
            m.record_question();
        }
        let s = m.snapshot();
        assert!((s.questions_per_sec(Duration::from_secs(2)) - 5.0).abs() < 1e-9);
        assert_eq!(s.questions_per_sec(Duration::ZERO), 0.0);
        let report = s.report(Duration::from_secs(2));
        assert!(report.contains("questions/sec"));
        assert!(report.contains("calibration"));
        assert!(report.contains("parse failures"));
    }
}
