//! Output calibration — the paper's Algorithm 1.
//!
//! Input: `n` candidate SQL strings sampled from the LLM plus the schema.
//! Steps: `f1` typo repair, `f2` keyword-component extraction with a
//! validity gate, non-execution self-consistency clustering on component
//! compatibility, largest-cluster selection, and `f3` table–column
//! alignment. No SQL is ever executed — the design constraint the paper
//! emphasises for production financial databases.

use sqlkit::ast::Statement;
use sqlkit::catalog::CatalogSchema;
use sqlkit::components::{components_of_query, SqlComponents};
use sqlkit::repair::{align_tables, normalize_text, repair_statement};
use sqlkit::{parse_statement, to_sql};

/// Which calibration steps run — the knobs of the paper's Table 9.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// `f1`: typo/structure repair before clustering.
    pub repair: bool,
    /// Component-compatibility clustering and largest-cluster voting.
    pub self_consistency: bool,
    /// `f3`: table–column alignment on the final query.
    pub alignment: bool,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig { repair: true, self_consistency: true, alignment: true }
    }
}

impl CalibrationConfig {
    /// Calibration fully disabled (Table 9, "w/o Output Calibration").
    pub fn off() -> Self {
        CalibrationConfig { repair: false, self_consistency: false, alignment: false }
    }
}

/// What happened inside one [`calibrate_with_stats`] call — the per-stage
/// tallies the evaluation metrics aggregate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationStats {
    /// Candidates given to the algorithm.
    pub candidates: usize,
    /// Candidates that failed to parse (after `f1` text normalisation
    /// when repair is on).
    pub parse_failures: usize,
    /// Individual `f1` structural fixes applied (table names, dangling
    /// joins, column names), summed over all candidates.
    pub repairs: usize,
    /// Parsed candidates dropped by the column-resolution gate.
    pub dropped_unresolved: usize,
    /// Whether every candidate was gated out and the first parseable one
    /// was rescued without the gate.
    pub rescued: bool,
}

/// Runs Algorithm 1 over candidate SQL strings. Returns the calibrated
/// final SQL, or `None` when no candidate parses at all.
pub fn calibrate(
    candidates: &[String],
    schema: &CatalogSchema,
    cfg: &CalibrationConfig,
) -> Option<String> {
    calibrate_with_stats(candidates, schema, cfg).0
}

/// [`calibrate`], also reporting what the algorithm did. The returned SQL
/// is byte-identical to `calibrate`'s — the stats ride along for free.
pub fn calibrate_with_stats(
    candidates: &[String],
    schema: &CatalogSchema,
    cfg: &CalibrationConfig,
) -> (Option<String>, CalibrationStats) {
    let mut stats = CalibrationStats { candidates: candidates.len(), ..Default::default() };
    // f1 + f2: repair and extract components, dropping candidates whose
    // columns cannot be resolved against the schema. The per-candidate
    // stage is a pure function of the candidate text, and sampled
    // candidate lists repeat strings often (several samples of one
    // prototype decode identically), so each distinct string is repaired,
    // parsed and gated once and repeats replay the recorded outcome —
    // entries (and therefore cluster votes) and stats are identical to
    // processing every occurrence from scratch.
    enum Outcome {
        Failed,
        Dropped { repairs: usize },
        Kept { kept: Box<(sqlkit::ast::SelectStmt, SqlComponents)>, repairs: usize },
    }
    let mut seen: Vec<(&str, Outcome)> = Vec::new();
    let mut entries: Vec<(sqlkit::ast::SelectStmt, SqlComponents)> = Vec::new();
    for raw in candidates {
        let idx = match seen.iter().position(|(r, _)| *r == raw.as_str()) {
            Some(i) => i,
            None => {
                let text = if cfg.repair { normalize_text(raw) } else { raw.clone() };
                let outcome = match parse_statement(&text) {
                    Ok(Statement::Select(mut q)) => {
                        let mut repairs = 0;
                        if cfg.repair {
                            repairs = repair_statement(&mut q, schema);
                        }
                        let comps = components_of_query(&q);
                        // "if columns of e_i in S": candidates referencing
                        // unresolvable columns are dropped (when repair
                        // could not fix them).
                        if cfg.repair && !columns_resolve(&q, schema) {
                            Outcome::Dropped { repairs }
                        } else {
                            Outcome::Kept { kept: Box::new((q, comps)), repairs }
                        }
                    }
                    _ => Outcome::Failed,
                };
                seen.push((raw, outcome));
                seen.len() - 1
            }
        };
        match &seen[idx].1 {
            Outcome::Failed => stats.parse_failures += 1,
            Outcome::Dropped { repairs } => {
                stats.repairs += repairs;
                stats.dropped_unresolved += 1;
            }
            Outcome::Kept { kept, repairs } => {
                stats.repairs += repairs;
                let (q, comps) = kept.as_ref();
                entries.push((q.clone(), comps.clone()));
            }
        }
    }
    if entries.is_empty() {
        // Fall back to the first parseable candidate without the gate.
        for raw in candidates {
            if let Ok(Statement::Select(q)) = parse_statement(&normalize_text(raw)) {
                let comps = components_of_query(&q);
                entries.push((q, comps));
                stats.rescued = true;
                break;
            }
        }
    }
    let picked = if cfg.self_consistency {
        largest_cluster(entries)
    } else {
        entries.into_iter().next()
    };
    let Some((mut best, _)) = picked else {
        return (None, stats);
    };
    if cfg.alignment {
        align_tables(&mut best, schema);
    }
    (Some(to_sql(&Statement::Select(best))), stats)
}

/// Clusters candidates by component compatibility; returns the first
/// member of the largest cluster (ties: earliest-formed cluster, as in
/// the paper's stable ordering).
fn largest_cluster(
    entries: Vec<(sqlkit::ast::SelectStmt, SqlComponents)>,
) -> Option<(sqlkit::ast::SelectStmt, SqlComponents)> {
    let mut clusters: Vec<Vec<(sqlkit::ast::SelectStmt, SqlComponents)>> = Vec::new();
    for (q, comps) in entries {
        match clusters.iter_mut().find(|cl| cl[0].1.compatible_with(&comps)) {
            Some(cl) => cl.push((q, comps)),
            None => clusters.push(vec![(q, comps)]),
        }
    }
    clusters
        .into_iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))
        .and_then(|(_, cl)| cl.into_iter().next())
}

/// True when every referenced column resolves within the schema scope.
fn columns_resolve(q: &sqlkit::ast::SelectStmt, schema: &CatalogSchema) -> bool {
    sqlkit::incremental::check_against_schema(&to_sql(&Statement::Select(q.clone())), schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, CatalogTable, ColType, ForeignKey};

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "cal".into(),
            tables: vec![
                CatalogTable {
                    name: "lc_sharestru".into(),
                    desc_en: String::new(),
                    desc_cn: String::new(),
                    columns: vec![
                        CatalogColumn::new("compcode", ColType::Int, "", ""),
                        CatalogColumn::new("chinameabbr", ColType::Text, "", ""),
                        CatalogColumn::new("aquireramount", ColType::Float, "", ""),
                    ],
                },
                CatalogTable {
                    name: "lc_exgindustry".into(),
                    desc_en: String::new(),
                    desc_cn: String::new(),
                    columns: vec![
                        CatalogColumn::new("compcode", ColType::Int, "", ""),
                        CatalogColumn::new("firstindustryname", ColType::Text, "", ""),
                    ],
                },
            ],
            foreign_keys: vec![ForeignKey {
                from_table: "lc_exgindustry".into(),
                from_column: "compcode".into(),
                to_table: "lc_sharestru".into(),
                to_column: "compcode".into(),
            }],
        }
    }

    #[test]
    fn majority_cluster_wins() {
        let candidates = vec![
            "SELECT chinameabbr FROM lc_sharestru WHERE compcode = 5".to_string(),
            "SELECT chinameabbr FROM lc_sharestru WHERE compcode = 5".to_string(),
            "SELECT aquireramount FROM lc_sharestru WHERE compcode = 5".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert!(out.contains("chinameabbr"), "got {out}");
    }

    #[test]
    fn semantically_equal_candidates_cluster_together() {
        // Different alias spelling and predicate order, same components:
        // they must form one cluster that outvotes the odd one out.
        let candidates = vec![
            "SELECT t1.chinameabbr FROM lc_sharestru AS t1 WHERE t1.compcode = 5 AND t1.aquireramount > 2".to_string(),
            "SELECT lc_sharestru.chinameabbr FROM lc_sharestru WHERE lc_sharestru.aquireramount > 2 AND lc_sharestru.compcode = 5".to_string(),
            "SELECT aquireramount FROM lc_sharestru".to_string(),
            "SELECT compcode FROM lc_sharestru".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert!(out.contains("chinameabbr"), "got {out}");
    }

    #[test]
    fn repair_fixes_figure12_typos() {
        let candidates = vec![
            "SELECT aquirementrium FROM lc_sharestru WHERE compcode == 5;".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert_eq!(out, "SELECT aquireramount FROM lc_sharestru WHERE compcode = 5");
    }

    #[test]
    fn alignment_requalifies_wrong_tables() {
        let candidates = vec![
            "SELECT t2.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode WHERE t1.firstindustryname = 'Banks'".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert!(out.contains("t1.chinameabbr"), "got {out}");
        assert!(out.contains("t2.firstindustryname"), "got {out}");
    }

    #[test]
    fn disabled_alignment_leaves_misqualification() {
        let candidates = vec![
            "SELECT t2.chinameabbr FROM lc_sharestru AS t1 JOIN lc_exgindustry AS t2 ON t1.compcode = t2.compcode".to_string(),
        ];
        let cfg = CalibrationConfig { alignment: false, ..Default::default() };
        let out = calibrate(&candidates, &schema(), &cfg).unwrap();
        assert!(out.contains("t2.chinameabbr"), "got {out}");
    }

    #[test]
    fn disabled_self_consistency_takes_first_valid() {
        let candidates = vec![
            "SELECT aquireramount FROM lc_sharestru".to_string(),
            "SELECT chinameabbr FROM lc_sharestru".to_string(),
            "SELECT chinameabbr FROM lc_sharestru".to_string(),
        ];
        let cfg = CalibrationConfig { self_consistency: false, ..Default::default() };
        let out = calibrate(&candidates, &schema(), &cfg).unwrap();
        assert!(out.contains("aquireramount"));
    }

    #[test]
    fn unparseable_candidates_are_dropped() {
        let candidates = vec![
            "totally not sql".to_string(),
            "SELECT chinameabbr FROM lc_sharestru".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert!(out.contains("chinameabbr"));
    }

    #[test]
    fn all_unparseable_yields_none() {
        let candidates = vec!["???".to_string(), "".to_string()];
        assert!(calibrate(&candidates, &schema(), &CalibrationConfig::default()).is_none());
    }

    #[test]
    fn stats_match_hand_counted_run() {
        // One unparseable candidate, one needing exactly one column
        // repair, one clean — the tallies are checked against this count
        // by hand.
        let candidates = vec![
            "totally not sql".to_string(),
            "SELECT aquirementrium FROM lc_sharestru WHERE compcode == 5;".to_string(),
            "SELECT chinameabbr FROM lc_sharestru".to_string(),
        ];
        let (out, stats) =
            calibrate_with_stats(&candidates, &schema(), &CalibrationConfig::default());
        assert!(out.is_some());
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.parse_failures, 1);
        assert_eq!(stats.repairs, 1, "exactly the aquirementrium column fix");
        assert_eq!(stats.dropped_unresolved, 0);
        assert!(!stats.rescued);
    }

    #[test]
    fn stats_report_all_unparseable() {
        let candidates = vec!["???".to_string(), "".to_string()];
        let (out, stats) =
            calibrate_with_stats(&candidates, &schema(), &CalibrationConfig::default());
        assert!(out.is_none());
        assert_eq!(stats.parse_failures, 2);
        assert!(!stats.rescued);
    }

    #[test]
    fn stats_agree_with_calibrate() {
        let candidates = vec![
            "SELECT chinameabbr FROM lc_sharestru WHERE compcode = 5".to_string(),
            "SELECT aquireramount FROM lc_sharestru WHERE compcode == 5".to_string(),
            "not sql at all".to_string(),
        ];
        let cfg = CalibrationConfig::default();
        let direct = calibrate(&candidates, &schema(), &cfg);
        let (with_stats, _) = calibrate_with_stats(&candidates, &schema(), &cfg);
        assert_eq!(direct, with_stats, "the two entry points must produce identical SQL");
    }

    #[test]
    fn dangling_join_gets_fk_repair() {
        let candidates = vec![
            "SELECT t1.chinameabbr FROM lc_sharestru t1 JOIN lc_exgindustry t2 ON WHERE t2.firstindustryname = 'Banks'".to_string(),
        ];
        let out = calibrate(&candidates, &schema(), &CalibrationConfig::default()).unwrap();
        assert!(out.contains("ON t1.compcode = t2.compcode"), "got {out}");
    }
}
