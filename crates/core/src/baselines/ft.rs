//! Fine-tuning baselines: RESDSQL, Token Preprocessing, PICARD.
//!
//! All three share the substrate of the FinSQL system — our parallel
//! Cross-Encoder for schema linking (the `*` of Tables 4/5) and a LoRA
//! fine-tuned T5/mT5-profile generator — but differ in exactly the
//! mechanism each paper contributes:
//!
//! - **Token Preprocessing**: identifier-splitting only; plain training
//!   data, greedy decoding.
//! - **RESDSQL**: ranking-enhanced encoding (the shared linker) plus
//!   *skeleton-aware decoding* — skeleton augmentation in training and a
//!   structure-stable decode (skeleton temperature 0).
//! - **PICARD**: plain training, but incremental-parsing constrained
//!   decoding — candidates that cannot parse into schema-valid SQL are
//!   rejected and the decoder retries.

use crate::cache::{Answerer, ConfigFingerprint};
use crate::metrics::EvalMetrics;
use crate::pipeline::{FinSql, FinSqlConfig};
use crate::CalibrationConfig;
use augment::AugmentationFlags;
use bull::{BullDataset, DbId, Lang};
use crossenc::InferenceMode;
use rand::rngs::StdRng;
use simllm::{BaseModelProfile, GenConfig, SqlGenerator};
use sqlkit::incremental::check_against_schema;

/// Decoding mode distinguishing the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// Greedy single-sample decoding (Token Preprocessing).
    Greedy,
    /// Skeleton-aware decoding (RESDSQL): structure chosen at temperature
    /// zero, token noise unchanged.
    SkeletonAware,
    /// Constrained decoding (PICARD): sample up to `n` candidates,
    /// return the first that parses and type-checks against the schema.
    Constrained { n: usize },
}

/// A fine-tuning baseline wraps a [`FinSql`] system built with
/// baseline-specific training flags and disables FinSQL's calibration.
pub struct FtBaseline {
    pub name: &'static str,
    pub mode: FtMode,
    system: FinSql,
}

impl FtBaseline {
    /// Builds Token Preprocessing: no augmentation, greedy decode.
    pub fn token_preprocessing(
        ds: &BullDataset,
        profile: &'static BaseModelProfile,
        lang: Lang,
    ) -> Self {
        FtBaseline {
            name: "Token Preprocessing",
            mode: FtMode::Greedy,
            system: FinSql::build(ds, profile, baseline_config(lang, AugmentationFlags::none())),
        }
    }

    /// Builds RESDSQL: skeleton-augmented training + skeleton-aware
    /// decoding.
    pub fn resdsql(ds: &BullDataset, profile: &'static BaseModelProfile, lang: Lang) -> Self {
        let flags = AugmentationFlags {
            cot: false,
            synonyms: false,
            skeleton: true,
            ..AugmentationFlags::default()
        };
        FtBaseline {
            name: "RESDSQL",
            mode: FtMode::SkeletonAware,
            system: FinSql::build(ds, profile, baseline_config(lang, flags)),
        }
    }

    /// Builds PICARD: plain training + constrained decoding.
    pub fn picard(ds: &BullDataset, profile: &'static BaseModelProfile, lang: Lang) -> Self {
        FtBaseline {
            name: "PICARD",
            mode: FtMode::Constrained { n: 8 },
            system: FinSql::build(ds, profile, baseline_config(lang, AugmentationFlags::none())),
        }
    }

    /// Answers one question.
    pub fn answer(&self, db: DbId, question: &str, rng: &mut StdRng) -> String {
        let rt = self.system.runtime(db);
        let linked = self.system.linker.link(question, &rt.views, InferenceMode::Parallel);
        let prompt_schema =
            linked.project(&rt.schema, self.system.config.k_tables, self.system.config.k_columns);
        let generator = SqlGenerator::new(&self.system.base, Some(&rt.plugin), self.system.profile);
        match self.mode {
            FtMode::Greedy => generator
                .generate(
                    question,
                    &prompt_schema,
                    &rt.values,
                    // Greedy decoding carries less sampling noise.
                    GenConfig { n_samples: 1, temperature: 0.45, skeleton_temperature: None },
                    rng,
                )
                .pop()
                .unwrap_or_default(),
            FtMode::SkeletonAware => generator
                .generate(
                    question,
                    &prompt_schema,
                    &rt.values,
                    GenConfig { n_samples: 1, temperature: 0.45, skeleton_temperature: Some(0.0) },
                    rng,
                )
                .pop()
                .unwrap_or_default(),
            FtMode::Constrained { n } => {
                // PICARD's incremental parser prevents schema-invalid
                // tokens from ever being decoded — equivalent to a
                // noise-free decoder plus a validity filter over samples.
                let constrained_profile = simllm::BaseModelProfile {
                    noise: simllm::noise::NoiseRates::NONE,
                    ..*self.system.profile
                };
                let generator =
                    SqlGenerator::new(&self.system.base, Some(&rt.plugin), &constrained_profile);
                let candidates = generator.generate(
                    question,
                    &prompt_schema,
                    &rt.values,
                    GenConfig { n_samples: n, temperature: 0.45, skeleton_temperature: None },
                    rng,
                );
                candidates
                    .iter()
                    .find(|c| check_against_schema(c, &rt.schema))
                    .cloned()
                    .unwrap_or_else(|| candidates.into_iter().next().unwrap_or_default())
            }
        }
    }

    /// A deterministic per-question RNG, mirroring [`FinSql`].
    pub fn question_rng(&self, db: DbId, question: &str) -> StdRng {
        self.system.question_rng(db, question)
    }
}

impl Answerer for FtBaseline {
    /// The wrapped system's fingerprint extended with the baseline's
    /// identity and decoding mode — two baselines over identically
    /// configured systems must never share cache entries.
    fn fingerprint(&self) -> ConfigFingerprint {
        let mut b = crate::cache::FingerprintBuilder::new("ft-baseline")
            .push_u64(self.system.config_fingerprint().0)
            .push_str(self.name);
        b = match self.mode {
            FtMode::Greedy => b.push_u64(0),
            FtMode::SkeletonAware => b.push_u64(1),
            FtMode::Constrained { n } => b.push_u64(2).push_usize(n),
        };
        b.finish()
    }

    fn answer_fresh(&self, db: DbId, question: &str, _metrics: Option<&EvalMetrics>) -> String {
        let mut rng = self.question_rng(db, question);
        self.answer(db, question, &mut rng)
    }
}

fn baseline_config(lang: Lang, augmentation: AugmentationFlags) -> FinSqlConfig {
    FinSqlConfig {
        augmentation,
        calibration: CalibrationConfig::off(),
        n_candidates: 1,
        ..FinSqlConfig::standard(lang)
    }
}
