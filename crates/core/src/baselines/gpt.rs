//! GPT-based in-context-learning baselines: DAIL-SQL, DIN-SQL, C3.
//!
//! These methods prompt a closed model with the *full* schema (no
//! fine-tuning, no Cross-Encoder): DAIL-SQL selects demonstration pairs
//! by similarity, DIN-SQL decomposes the task into several long prompts,
//! C3 relies on zero-shot "clear prompting". The closed model is
//! simulated with an in-context "plugin" whose prototypes come from the
//! selected demonstrations only (no LoRA adaptation — exactly what ICL
//! is), under a GPT-specific capability profile. Cost-per-SQL is metered
//! from real prompt text at the paper's Table 2 prices.

use crate::cache::{Answerer, ConfigFingerprint, FingerprintBuilder};
use crate::metrics::EvalMetrics;
use crate::prompt::{render_icl_prompt, render_prompt};
use bull::{DbId, Lang};
use rand::rngs::StdRng;
use simllm::hub::Prototype;
use simllm::noise::NoiseRates;
use simllm::{
    shape_of, BaseModelProfile, EmbeddingModel, GenConfig, LoraPlugin, SqlGenerator, ValueIndex,
};
use sqlkit::catalog::CatalogSchema;
use sqlkit::skeleton_of;
use textenc::{ApiPrice, CostMeter, GPT_35_TURBO, GPT_4_32K, GPT_4_8K};

/// Which closed model backs the method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GptModel {
    Gpt4,
    ChatGpt,
}

impl GptModel {
    /// API prices (DIN-SQL's oversized prompts are priced at the 32k
    /// tier, as the paper does).
    pub fn price(self, needs_32k: bool) -> ApiPrice {
        match self {
            GptModel::Gpt4 => {
                if needs_32k {
                    GPT_4_32K
                } else {
                    GPT_4_8K
                }
            }
            GptModel::ChatGpt => GPT_35_TURBO,
        }
    }

    fn profile(self) -> &'static BaseModelProfile {
        match self {
            GptModel::Gpt4 => &GPT4_PROFILE,
            GptModel::ChatGpt => &CHATGPT_PROFILE,
        }
    }
}

/// GPT-4: strong in-context learner.
pub static GPT4_PROFILE: BaseModelProfile = BaseModelProfile {
    name: "GPT-4",
    slot_skill: 0.95,
    join_skill: 0.9,
    skel_slip: 0.06,
    noise: NoiseRates { typo: 0.02, double_eq: 0.015, drop_on: 0.015, misalign: 0.04, value: 0.008 },
};

/// ChatGPT (GPT-3.5-turbo): markedly weaker on wide schemas.
pub static CHATGPT_PROFILE: BaseModelProfile = BaseModelProfile {
    name: "ChatGPT",
    slot_skill: 0.78,
    join_skill: 0.62,
    skel_slip: 0.3,
    noise: NoiseRates { typo: 0.07, double_eq: 0.05, drop_on: 0.05, misalign: 0.1, value: 0.015 },
};

/// The prompting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GptMethod {
    /// DAIL-SQL: similarity-selected demonstrations.
    DailSql { shots: usize },
    /// DIN-SQL: decomposed multi-stage prompting (four long prompts per
    /// question).
    DinSql,
    /// C3: zero-shot clear prompting (its Spider-tuned instructions do
    /// not carry over to BULL).
    C3,
}

/// One configured GPT baseline over one database.
pub struct GptBaseline<'a> {
    pub method: GptMethod,
    pub model: GptModel,
    pub lang: Lang,
    base: &'a EmbeddingModel,
    schema: &'a CatalogSchema,
    values: &'a ValueIndex,
    /// Training pool for demonstration selection, with cached embeddings.
    pool: Vec<(String, String, Vec<f32>)>,
    pub meter: CostMeter,
}

impl<'a> GptBaseline<'a> {
    /// Prepares a baseline; `train_pairs` is the demonstration pool.
    pub fn new(
        method: GptMethod,
        model: GptModel,
        lang: Lang,
        base: &'a EmbeddingModel,
        schema: &'a CatalogSchema,
        values: &'a ValueIndex,
        train_pairs: &[(String, String)],
    ) -> Self {
        // DAIL-SQL matches *masked* questions: schema words are removed so
        // similarity reflects linguistic structure, not topic.
        let vocab = schema_vocab(schema);
        let pool = train_pairs
            .iter()
            .map(|(q, sql)| (q.clone(), sql.clone(), base.embed(&mask_question(q, &vocab), None)))
            .collect();
        GptBaseline { method, model, lang, base, schema, values, pool, meter: CostMeter::new() }
    }

    /// Answers one question, metering the API cost.
    pub fn answer(&mut self, question: &str, rng: &mut StdRng) -> String {
        let (prompt_text, n_calls, demonstrations) = match self.method {
            GptMethod::DailSql { shots } => {
                let demos = self.select_demonstrations(question, shots);
                let text = render_icl_prompt(question, self.schema, self.lang, &demos);
                (text, 1, demos)
            }
            GptMethod::DinSql => {
                // Four decomposed stages, each re-sending the schema plus
                // DIN-SQL's large static exemplar library.
                let text =
                    format!("{}\n{}", din_exemplars(), render_prompt(question, self.schema, self.lang));
                (text, 4, Vec::new())
            }
            GptMethod::C3 => (render_prompt(question, self.schema, self.lang), 1, Vec::new()),
        };
        // The in-context "plugin": prototypes from the demonstrations,
        // in masked-question space.
        let vocab = schema_vocab(self.schema);
        let plugin =
            icl_plugin(self.base, &demonstrations, &vocab, self.model == GptModel::Gpt4);
        let generator =
            SqlGenerator::new(self.base, plugin.as_ref(), self.model.profile());
        let masked = mask_question(question, &vocab);
        let sql = generator
            .generate_with_retrieval_text(
                question,
                &masked,
                self.schema,
                self.values,
                GenConfig { n_samples: 1, temperature: 0.6, skeleton_temperature: None },
                rng,
            )
            .into_iter()
            .next()
            .unwrap_or_default();
        // Cost accounting: every stage pays for its prompt.
        let price = self.price();
        for _ in 0..n_calls {
            self.meter.record_call(&price, &prompt_text, &sql);
        }
        self.meter.finish_query();
        sql
    }

    /// The effective price tier (DIN-SQL prompts exceed the 8k window on
    /// BULL schemas, as the paper reports).
    pub fn price(&self) -> ApiPrice {
        self.model.price(matches!(self.method, GptMethod::DinSql))
    }

    /// True when this method cannot actually run within the model's
    /// context window (the paper's DIN-SQL + GPT-4 "-" row).
    pub fn infeasible(&self) -> bool {
        if self.method != GptMethod::DinSql || self.model != GptModel::Gpt4 {
            return false;
        }
        let text = format!("{}\n{}", din_exemplars(), render_prompt("q", self.schema, self.lang));
        textenc::approx_token_count(&text) > GPT_4_8K.context_limit
    }

    fn select_demonstrations(&self, question: &str, shots: usize) -> Vec<(String, String)> {
        // DAIL-style: rank the pool by masked-question-embedding
        // similarity, diversified by skeleton (at most two per skeleton).
        let vocab = schema_vocab(self.schema);
        let qe = self.base.embed(&mask_question(question, &vocab), None);
        type PoolEntry = (String, String, Vec<f32>);
        let mut ranked: Vec<(f32, &PoolEntry)> = self
            .pool
            .iter()
            .map(|entry| (simllm::embed::cosine(&qe, &entry.2), entry))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut per_skeleton: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for (_, (q, sql, _)) in ranked {
            if out.len() >= shots {
                break;
            }
            let skel = skeleton_of(sql).unwrap_or_default();
            let seen = per_skeleton.entry(skel).or_insert(0);
            if *seen < 2 {
                *seen += 1;
                out.push((q.clone(), sql.clone()));
            }
        }
        out
    }
}

/// A [`GptBaseline`] pinned to its database and made shareable across
/// evaluation threads: the inner baseline sits behind a mutex (its cost
/// meter mutates on every call), randomness is drawn from the shared
/// per-question stream, and the configuration fingerprint covers the
/// method, model, register, seed and database so the answer cache can
/// never serve one configuration's SQL to another.
pub struct SharedGptBaseline<'a> {
    inner: parking_lot::Mutex<GptBaseline<'a>>,
    db: DbId,
    seed: u64,
}

impl<'a> SharedGptBaseline<'a> {
    /// Wraps a baseline built for `db`, with the evaluation seed the
    /// per-question RNG derives from.
    pub fn new(baseline: GptBaseline<'a>, db: DbId, seed: u64) -> Self {
        SharedGptBaseline { inner: parking_lot::Mutex::new(baseline), db, seed }
    }

    /// Runs a closure over the inner baseline (cost-meter reads).
    pub fn with_inner<T>(&self, f: impl FnOnce(&GptBaseline<'a>) -> T) -> T {
        f(&self.inner.lock())
    }
}

impl Answerer for SharedGptBaseline<'_> {
    fn fingerprint(&self) -> ConfigFingerprint {
        let inner = self.inner.lock();
        let mut b = FingerprintBuilder::new("gpt-baseline");
        b = match inner.method {
            GptMethod::DailSql { shots } => b.push_u64(0).push_usize(shots),
            GptMethod::DinSql => b.push_u64(1),
            GptMethod::C3 => b.push_u64(2),
        };
        b = match inner.model {
            GptModel::Gpt4 => b.push_u64(0),
            GptModel::ChatGpt => b.push_u64(1),
        };
        b.push_str(inner.lang.suffix())
            .push_u64(self.seed)
            .push_str(self.db.as_str())
            .finish()
    }

    fn answer_fresh(&self, db: DbId, question: &str, _metrics: Option<&EvalMetrics>) -> String {
        debug_assert_eq!(db, self.db, "baseline built for one database");
        let mut rng = crate::pipeline::question_rng(self.seed, db, question);
        self.inner.lock().answer(question, &mut rng)
    }
}

/// DIN-SQL ships a fixed library of decomposition instructions and
/// worked exemplars that every stage prompt carries (schema-linking
/// exemplars, classification exemplars, generation exemplars and
/// self-correction rules). We stand in for that text with a block of the
/// same token mass, which is what drives both the context overflow on
/// 8k models and the paper's ~$4.9 cost per SQL.
fn din_exemplars() -> String {
    const STAGE_BLOCK: &str = "Decompose the question, classify its hardness, link the schema \
items, produce the intermediate representation, then generate and self correct the final SQL \
following the worked examples below. ";
    // ≈ 16k tokens of instructions + exemplars across the four stages.
    STAGE_BLOCK.repeat(400)
}

/// Builds the in-context plugin: skeleton prototypes over *base*
/// embeddings of the demonstrations (no weight adaptation — that is what
/// distinguishes ICL from fine-tuning).
/// All description/identifier word tokens of a schema, used for masking.
fn schema_vocab(schema: &CatalogSchema) -> std::collections::HashSet<String> {
    let mut vocab = std::collections::HashSet::new();
    for t in &schema.tables {
        vocab.extend(textenc::tokenize(&t.desc_en));
        vocab.extend(textenc::tokenize(&t.desc_cn));
        for c in &t.columns {
            vocab.extend(textenc::tokenize(&c.desc_en));
            vocab.extend(textenc::tokenize(&c.desc_cn));
        }
    }
    vocab
}

/// Removes schema-vocabulary words from a question, leaving the
/// linguistic frame ("what is the ⟨⟩ of the ⟨⟩ whose ⟨⟩ is Alpha").
/// Structure cue words survive even when a column description also uses
/// them ("count", "total") — they carry the query's shape.
fn mask_question(question: &str, vocab: &std::collections::HashSet<String>) -> String {
    textenc::tokenize(question)
        .into_iter()
        .filter(|t| simllm::embed::is_structure_word(t) || !vocab.contains(t))
        .collect::<Vec<_>>()
        .join(" ")
}

fn icl_plugin(
    base: &EmbeddingModel,
    demonstrations: &[(String, String)],
    vocab: &std::collections::HashSet<String>,
    strong_reasoner: bool,
) -> Option<LoraPlugin> {
    if demonstrations.is_empty() {
        return None;
    }
    type ProtoAcc = std::collections::HashMap<String, (simllm::ShapeKind, Vec<f32>, f32)>;
    let mut by_skeleton: ProtoAcc = std::collections::HashMap::new();
    for (q, sql) in demonstrations {
        let (Some(skel), Some(shape)) = (skeleton_of(sql), shape_of(sql)) else {
            continue;
        };
        let emb = base.embed(&mask_question(q, vocab), None);
        let entry = by_skeleton.entry(skel).or_insert((shape, vec![0.0; emb.len()], 0.0));
        for (a, e) in entry.1.iter_mut().zip(&emb) {
            *a += e;
        }
        entry.2 += 1.0;
    }
    if by_skeleton.is_empty() {
        return None;
    }
    let mut prototypes: Vec<Prototype> = by_skeleton
        .into_iter()
        .map(|(skeleton, (shape, mut sum, count))| {
            for v in &mut sum {
                *v /= count;
            }
            simllm::embed::normalize(&mut sum);
            Prototype { skeleton, shape, centroid: sum, count }
        })
        .collect();
    prototypes.sort_by(|a, b| a.skeleton.cmp(&b.skeleton));
    Some(LoraPlugin {
        name: "icl".into(),
        lora: simllm::LoraModule::init(base.dim_in(), simllm::embed::EMBED_DIM, 0),
        prototypes,
        cot_trained: strong_reasoner,
        n_examples: demonstrations.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlengine::{Database, Value};
    use sqlkit::catalog::{CatalogColumn, CatalogTable, ColType};

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "gpt".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: "fund master".into(),
                desc_cn: "基金".into(),
                columns: vec![
                    CatalogColumn::new("fname", ColType::Text, "fund name", "基金名称"),
                    CatalogColumn::new("ftype", ColType::Text, "fund type", "基金类型"),
                ],
            }],
            foreign_keys: vec![],
        }
    }

    fn db(schema: &CatalogSchema) -> Database {
        let mut db = Database::new(schema.clone());
        db.insert("fund", vec![Value::from("Alpha"), Value::from("bond fund")]).unwrap();
        db
    }

    fn pool() -> Vec<(String, String)> {
        (0..20)
            .map(|i| {
                (
                    format!("how many funds have fund type kind{i}"),
                    format!("SELECT COUNT(*) FROM fund WHERE ftype = 'k{i}'"),
                )
            })
            .collect()
    }

    #[test]
    fn dail_selects_similar_demonstrations() {
        let base = EmbeddingModel::pretrained(1);
        let s = schema();
        let d = db(&s);
        let values = ValueIndex::build(&d);
        let b = GptBaseline::new(
            GptMethod::DailSql { shots: 4 },
            GptModel::Gpt4,
            Lang::En,
            &base,
            &s,
            &values,
            &pool(),
        );
        let demos = b.select_demonstrations("how many funds have fund type bond fund", 4);
        assert_eq!(demos.len(), 2, "skeleton diversity caps at two per skeleton");
        assert!(demos[0].0.contains("how many"));
    }

    #[test]
    fn answer_meters_cost() {
        let base = EmbeddingModel::pretrained(1);
        let s = schema();
        let d = db(&s);
        let values = ValueIndex::build(&d);
        let mut b = GptBaseline::new(
            GptMethod::DailSql { shots: 4 },
            GptModel::ChatGpt,
            Lang::En,
            &base,
            &s,
            &values,
            &pool(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let sql = b.answer("how many funds have fund type bond fund", &mut rng);
        assert!(sql.starts_with("SELECT"), "{sql}");
        assert_eq!(b.meter.queries, 1);
        let cost = b.meter.cost_per_query(&b.price());
        assert!(cost > 0.0 && cost < 0.1, "cost {cost}");
    }

    #[test]
    fn din_sql_pays_multiple_calls() {
        let base = EmbeddingModel::pretrained(1);
        let s = schema();
        let d = db(&s);
        let values = ValueIndex::build(&d);
        let mut dail = GptBaseline::new(
            GptMethod::DailSql { shots: 2 },
            GptModel::Gpt4,
            Lang::En,
            &base,
            &s,
            &values,
            &pool(),
        );
        let mut din = GptBaseline::new(
            GptMethod::DinSql,
            GptModel::Gpt4,
            Lang::En,
            &base,
            &s,
            &values,
            &pool(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        dail.answer("how many funds have fund type bond fund", &mut rng);
        din.answer("how many funds have fund type bond fund", &mut rng);
        assert!(din.meter.calls > dail.meter.calls);
    }

    #[test]
    fn c3_zero_shot_falls_back() {
        let base = EmbeddingModel::pretrained(1);
        let s = schema();
        let d = db(&s);
        let values = ValueIndex::build(&d);
        let mut b = GptBaseline::new(
            GptMethod::C3,
            GptModel::ChatGpt,
            Lang::En,
            &base,
            &s,
            &values,
            &pool(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let sql = b.answer("how many funds have fund type bond fund", &mut rng);
        // Zero-shot: no prototypes, so the output is a bare fallback.
        assert!(sql.starts_with("SELECT "));
        assert!(!sql.contains("COUNT"), "zero-shot cannot recover the aggregate: {sql}");
    }

    #[test]
    fn din_on_bull_exceeds_8k_context() {
        let base = EmbeddingModel::pretrained(1);
        let full = bull::DbId::Stock.schema();
        let d = Database::new(full.clone());
        let values = ValueIndex::build(&d);
        let b = GptBaseline::new(
            GptMethod::DinSql,
            GptModel::Gpt4,
            Lang::En,
            &base,
            &full,
            &values,
            &[],
        );
        assert!(b.infeasible(), "DIN-SQL must overflow the 8k window on BULL");
    }
}
