//! The six comparison systems of the paper's Tables 4–5.
//!
//! GPT-based in-context-learning methods ([`gpt`]): DAIL-SQL, DIN-SQL and
//! C3, with cost-per-SQL accounting at the paper's Table 2 prices.
//! Fine-tuning methods ([`ft`]): RESDSQL, Token Preprocessing and PICARD,
//! all using our parallel Cross-Encoder for schema linking (the `*` in
//! the paper's result tables).

pub mod ft;
pub mod gpt;

pub use ft::{FtBaseline, FtMode};
pub use gpt::{GptBaseline, GptMethod, GptModel, SharedGptBaseline};
