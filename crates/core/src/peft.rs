//! Parameter-efficient fine-tuning orchestration (paper §7): training a
//! database's LoRA plugin on the hybrid augmented mix, registering it in
//! the plugin hub, and weights-merging-based few-shot transfer.

use augment::{build_training_mix, AugmentationFlags};
use bull::{BullDataset, DbId, Lang, Split};
use simllm::{
    train_plugin, EmbeddingModel, LoraPlugin, PluginHub, TrainExample, TrainOpts,
};

/// Builds the training pairs `(question, sql)` of one database's split in
/// one register.
pub fn training_pairs(ds: &BullDataset, db: DbId, lang: Lang) -> Vec<(String, String)> {
    ds.examples_for(db, Split::Train)
        .into_iter()
        .map(|e| (e.question(lang).to_string(), e.sql.clone()))
        .collect()
}

/// Trains a plugin for one database on the augmented mix and stores it in
/// the hub under `"{db}-{lang}"`.
pub fn train_database_plugin(
    base: &EmbeddingModel,
    hub: &PluginHub,
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    flags: AugmentationFlags,
    opts: TrainOpts,
) -> std::sync::Arc<LoraPlugin> {
    let pairs = training_pairs(ds, db, lang);
    let mix = build_training_mix(ds.db(db), &pairs, lang, flags);
    let name = plugin_name(db, lang);
    // Train to a fixed optimisation budget: smaller datasets get more
    // epochs, as any real fine-tuning run would (the augmented mixes are
    // several times larger than the raw annotations).
    let epochs = (60_000 / mix.len().max(1)).clamp(opts.epochs, 24);
    let plugin = train_plugin(base, &name, &mix, TrainOpts { epochs, ..opts });
    hub.insert(plugin)
}

/// Canonical hub name for a database's plugin.
pub fn plugin_name(db: DbId, lang: Lang) -> String {
    format!("{}-{}", db.as_str(), lang.suffix())
}

/// Weights-merging-based few-shot fine-tuning (paper §7.3, Figure 11):
/// merges the named source plugins with uniform ω, then continues
/// training on `k` target-domain examples.
pub fn fewshot_with_merge(
    base: &EmbeddingModel,
    hub: &PluginHub,
    sources: &[&str],
    target_name: &str,
    shots: &[TrainExample],
    opts: TrainOpts,
) -> Option<std::sync::Arc<LoraPlugin>> {
    let w = 1.0 / sources.len() as f32;
    let weighted: Vec<(&str, f32)> = sources.iter().map(|s| (*s, w)).collect();
    let merged = hub.merge_into(&format!("{target_name}-merged-init"), &weighted)?;
    let continued = simllm::train::continue_training(
        base,
        target_name,
        merged.lora.clone(),
        &merged.prototypes,
        shots,
        opts,
    );
    Some(hub.insert(continued))
}

/// Few-shot fine-tuning from scratch (the paper's "LoRA" curve of
/// Figure 13): a fresh plugin trained only on the `k` shots.
pub fn fewshot_from_scratch(
    base: &EmbeddingModel,
    hub: &PluginHub,
    target_name: &str,
    shots: &[TrainExample],
    opts: TrainOpts,
) -> std::sync::Arc<LoraPlugin> {
    hub.insert(train_plugin(base, target_name, shots, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::ExampleKind;

    fn shots(n: usize) -> Vec<TrainExample> {
        (0..n)
            .map(|i| TrainExample {
                question: format!("how many records of kind {i}"),
                sql: format!("SELECT COUNT(*) FROM t WHERE a = 'k{i}'"),
                kind: ExampleKind::Original,
            })
            .collect()
    }

    #[test]
    fn plugin_names_are_stable() {
        assert_eq!(plugin_name(DbId::Fund, Lang::En), "fund-en");
        assert_eq!(plugin_name(DbId::Macro, Lang::Cn), "macro-cn");
    }

    #[test]
    fn fewshot_merge_carries_source_knowledge() {
        let base = EmbeddingModel::pretrained(5);
        let hub = PluginHub::new();
        hub.insert(train_plugin(&base, "src-a", &shots(10), TrainOpts::default()));
        hub.insert(train_plugin(
            &base,
            "src-b",
            &[TrainExample {
                question: "top 3 things by size".into(),
                sql: "SELECT n FROM t ORDER BY m DESC LIMIT 3".into(),
                kind: ExampleKind::Original,
            }],
            TrainOpts::default(),
        ));
        let merged =
            fewshot_with_merge(&base, &hub, &["src-a", "src-b"], "tgt", &[], TrainOpts::default())
                .unwrap();
        // Zero-shot merged plugin still knows both source skeletons.
        assert_eq!(merged.prototypes.len(), 2);
        // From-scratch zero-shot knows nothing.
        let scratch = fewshot_from_scratch(&base, &hub, "tgt2", &[], TrainOpts::default());
        assert!(scratch.prototypes.is_empty());
    }

    #[test]
    fn missing_source_returns_none() {
        let base = EmbeddingModel::pretrained(5);
        let hub = PluginHub::new();
        assert!(fewshot_with_merge(&base, &hub, &["ghost"], "t", &[], TrainOpts::default())
            .is_none());
    }
}
