//! Prompt construction: rendering schemas and instruction prompts.
//!
//! The rendered text matters twice: it is what the context-length and
//! cost accounting of the GPT baselines is computed over (Tables 2/4/5),
//! and its conciseness — full schema vs schema-linked subset — is the
//! measurable benefit of the parallel Cross-Encoder.

use sqlkit::catalog::{CatalogSchema, Lang};

/// Renders a schema as `CREATE TABLE`-style prompt text with per-column
/// description comments, the common LLM Text-to-SQL serialisation.
pub fn render_schema(schema: &CatalogSchema, lang: Lang) -> String {
    let mut out = String::new();
    for t in &schema.tables {
        out.push_str(&format!("CREATE TABLE {} -- {}\n", t.name, t.desc(lang)));
        for (i, c) in t.columns.iter().enumerate() {
            let comma = if i + 1 < t.columns.len() { "," } else { "" };
            out.push_str(&format!("  {} {}{comma} -- {}\n", c.name, c.ty.sql_name(), c.desc(lang)));
        }
    }
    for fk in &schema.foreign_keys {
        out.push_str(&format!(
            "-- {}.{} references {}.{}\n",
            fk.from_table, fk.from_column, fk.to_table, fk.to_column
        ));
    }
    out
}

/// Builds the zero-shot instruction prompt.
pub fn render_prompt(question: &str, schema: &CatalogSchema, lang: Lang) -> String {
    format!(
        "Given the database schema and a question, write the SQL query corresponding to the question.\n\n{}\nQuestion: {}\nSQL:",
        render_schema(schema, lang),
        question
    )
}

/// Builds a few-shot in-context-learning prompt with `(question, sql)`
/// demonstration pairs, as the GPT baselines do.
pub fn render_icl_prompt(
    question: &str,
    schema: &CatalogSchema,
    lang: Lang,
    examples: &[(String, String)],
) -> String {
    let mut out = String::from(
        "Given the database schema, examples and a question, write the SQL query corresponding to the question.\n\n",
    );
    out.push_str(&render_schema(schema, lang));
    for (q, sql) in examples {
        out.push_str(&format!("\nQuestion: {q}\nSQL: {sql}\n"));
    }
    out.push_str(&format!("\nQuestion: {question}\nSQL:"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, CatalogTable, ColType, ForeignKey};

    fn schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "p".into(),
            tables: vec![CatalogTable {
                name: "mf_fundnav".into(),
                desc_en: "fund daily net value".into(),
                desc_cn: "基金每日净值".into(),
                columns: vec![
                    CatalogColumn::new("innercode", ColType::Int, "fund code", "基金代码"),
                    CatalogColumn::new("nav", ColType::Float, "unit net value", "单位净值"),
                ],
            }],
            foreign_keys: vec![ForeignKey {
                from_table: "mf_fundnav".into(),
                from_column: "innercode".into(),
                to_table: "mf_fundarchives".into(),
                to_column: "innercode".into(),
            }],
        }
    }

    #[test]
    fn schema_rendering_includes_descriptions_and_fks() {
        let text = render_schema(&schema(), Lang::En);
        assert!(text.contains("CREATE TABLE mf_fundnav -- fund daily net value"));
        assert!(text.contains("nav REAL -- unit net value"));
        assert!(text.contains("references mf_fundarchives.innercode"));
    }

    #[test]
    fn cn_register_uses_cn_descriptions() {
        let text = render_schema(&schema(), Lang::Cn);
        assert!(text.contains("单位净值"));
        assert!(!text.contains("unit net value"));
    }

    #[test]
    fn prompt_contains_question() {
        let p = render_prompt("show the nav", &schema(), Lang::En);
        assert!(p.contains("Question: show the nav"));
        assert!(p.ends_with("SQL:"));
    }

    #[test]
    fn icl_prompt_contains_examples() {
        let p = render_icl_prompt(
            "q",
            &schema(),
            Lang::En,
            &[("example q".into(), "SELECT 1".into())],
        );
        assert!(p.contains("example q"));
        assert!(p.contains("SELECT 1"));
    }

    #[test]
    fn linked_schema_prompt_is_much_shorter() {
        // A pruned schema renders to fewer tokens — the concise-prompt
        // benefit of schema linking.
        let full = bull::DbId::Fund.schema();
        let pruned = full.project(
            &["mf_fundnav".into()],
            &[("mf_fundnav".into(), "nav".into()), ("mf_fundnav".into(), "innercode".into())],
        );
        let t_full = textenc::approx_token_count(&render_schema(&full, Lang::En));
        let t_pruned = textenc::approx_token_count(&render_schema(&pruned, Lang::En));
        assert!(t_pruned * 10 < t_full, "pruned {t_pruned} vs full {t_full}");
    }
}
