//! Keyed answer caching — the serving layer in front of the pipeline.
//!
//! [`FinSql::answer`](crate::pipeline::FinSql::answer) is deterministic
//! per `(database, question)` because every RNG draw is seeded from
//! [`question_rng`](crate::pipeline::FinSql::question_rng); a cached
//! answer is therefore *exactly* the answer a recomputation would
//! produce. What can silently change an answer is configuration: linker
//! top-k, candidate count, calibration steps, the base-model profile or
//! the plugins loaded per database. [`ConfigFingerprint`] hashes every
//! one of those knobs into the cache key, so a stale-config hit is
//! structurally impossible — a changed knob changes the key and the old
//! entry is simply never found.
//!
//! [`AnswerCache`] is sharded and lock-striped: keys are spread over
//! independently-locked shards so evaluation workers rarely contend, and
//! each shard evicts its *least-recently-used* entry once a capacity cap
//! is reached — a hit refreshes an entry's recency, so a hot question
//! survives a sweep of cold ones. Recency is tracked lazily: each touch
//! stamps the entry and appends `(stamp, key)` to the shard's recency
//! queue, eviction pops the queue front skipping stale stamps, and the
//! queue is compacted when stale records outnumber live ones — so `get`
//! never scans the queue. [`Answerer`] is the trait the FinSQL system
//! and the fine-tuning/GPT baselines share so the bench harness can
//! thread one cache through any of them.

use crate::metrics::EvalMetrics;
use bull::DbId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// A stable hash of every configuration knob that can change an answer.
///
/// Two systems with equal fingerprints produce byte-identical answers
/// for the same `(db, question)`; any single knob mutation yields a
/// different fingerprint (each field occupies a fixed-width slot in the
/// underlying FNV-1a stream, and FNV-1a's per-byte step `h = (h ^ b) * p`
/// is injective in `h` for odd `p`, so a difference introduced at one
/// slot can never be cancelled by identical later slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigFingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental builder for a [`ConfigFingerprint`]. Fields must be
/// pushed in a fixed order; strings are length-prefixed so the byte
/// stream stays prefix-free.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    h: u64,
}

impl FingerprintBuilder {
    /// Starts a fingerprint under a domain label (so e.g. a FinSQL
    /// system and a baseline with coincidentally equal knobs can never
    /// share keys).
    pub fn new(domain: &str) -> Self {
        FingerprintBuilder { h: FNV_OFFSET }.push_str(domain)
    }

    fn push_byte(mut self, b: u8) -> Self {
        self.h = (self.h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self
    }

    /// Pushes a 64-bit value as a fixed-width little-endian slot.
    pub fn push_u64(mut self, v: u64) -> Self {
        for b in v.to_le_bytes() {
            self = self.push_byte(b);
        }
        self
    }

    pub fn push_usize(self, v: usize) -> Self {
        self.push_u64(v as u64)
    }

    pub fn push_bool(self, v: bool) -> Self {
        self.push_u64(u64::from(v))
    }

    /// Pushes a float by bit pattern (`-0.0` and `0.0` differ, NaNs are
    /// stable — fine for configuration knobs that are never computed).
    pub fn push_f64(self, v: f64) -> Self {
        self.push_u64(v.to_bits())
    }

    /// Pushes a length-prefixed string.
    pub fn push_str(mut self, s: &str) -> Self {
        self = self.push_u64(s.len() as u64);
        for b in s.as_bytes() {
            self = self.push_byte(*b);
        }
        self
    }

    pub fn finish(self) -> ConfigFingerprint {
        ConfigFingerprint(self.h)
    }
}

/// One cache key: the question pinned to its database and the full
/// configuration fingerprint of the system that answers it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    db: DbId,
    question: String,
    fingerprint: ConfigFingerprint,
}

impl CacheKey {
    /// The shard a key lives in — FNV over the parts, independent of the
    /// `HashMap` hasher.
    fn shard_index(db: DbId, question: &str, fingerprint: ConfigFingerprint, shards: usize) -> usize {
        let h = FingerprintBuilder::new(db.as_str())
            .push_str(question)
            .push_u64(fingerprint.0)
            .finish()
            .0;
        (h % shards as u64) as usize
    }
}

/// One resident entry: the answer plus the stamp of its latest touch.
#[derive(Debug)]
struct Entry {
    answer: String,
    stamp: u64,
}

/// One lock-striped shard: the entry map plus a lazily-maintained
/// recency queue for LRU eviction. Every touch (insert or hit) takes a
/// fresh stamp and appends `(stamp, key)`; a queue record whose stamp no
/// longer matches its entry's is stale and is skipped at eviction time
/// and dropped at compaction time.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    order: VecDeque<(u64, CacheKey)>,
    next_stamp: u64,
}

impl Shard {
    /// Hands out the next recency stamp (monotonic per shard). At the
    /// top of the counter the shard renumbers itself instead of
    /// overflowing: pre-fix, the increment panicked in debug builds and
    /// wrapped in release — and a wrapped counter re-issues stamps that
    /// still sit live in the queue, so stale records start passing the
    /// liveness check and eviction order silently corrupts.
    fn stamp(&mut self) -> u64 {
        if self.next_stamp == u64::MAX {
            self.renumber();
        }
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Stamp renormalisation: drop stale queue records, then re-issue
    /// stamps `1..=k` to the surviving records in queue order (which is
    /// exactly chronological touch order, so relative recency — and
    /// therefore LRU eviction order — is preserved bit for bit) and
    /// restart the counter above them.
    fn renumber(&mut self) {
        self.compact();
        let mut fresh = 0u64;
        for (stamp, key) in self.order.iter_mut() {
            fresh += 1;
            // compact() kept only live records: each one's stamp equals
            // its entry's, so entry and record move to `fresh` together.
            if let Some(entry) = self.map.get_mut(key) {
                entry.stamp = fresh;
            }
            *stamp = fresh;
        }
        self.next_stamp = fresh;
    }

    /// Marks `key` most-recently-used with a fresh stamp, compacting the
    /// queue when stale records outnumber live entries — amortised O(1).
    fn touch(&mut self, key: CacheKey) {
        let stamp = self.stamp();
        if let Some(entry) = self.map.get_mut(&key) {
            entry.stamp = stamp;
        }
        self.order.push_back((stamp, key));
        if self.order.len() > 2 * self.map.len().max(4) {
            self.compact();
        }
    }

    /// Drops every stale queue record, keeping live ones in order.
    fn compact(&mut self) {
        let map = &self.map;
        self.order.retain(|(stamp, key)| {
            map.get(key).is_some_and(|entry| entry.stamp == *stamp)
        });
    }

    /// Evicts least-recently-used entries until at most `cap` remain,
    /// returning how many were removed.
    fn evict_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap {
            let Some((stamp, key)) = self.order.pop_front() else { break };
            // Stale record: the key was touched again later (or already
            // evicted) — the newer queue record speaks for it.
            let live = self.map.get(&key).is_some_and(|entry| entry.stamp == stamp);
            if live {
                self.map.remove(&key);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Monotonic counters of one cache's lifetime, snapshot by
/// [`AnswerCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Sharded, lock-striped answer cache keyed by
/// `(DbId, question, ConfigFingerprint)`.
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; `None` = unbounded.
    shard_cap: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Shard count: enough stripes that a worker pool sized to typical core
/// counts rarely contends, cheap enough to iterate for stats.
const SHARDS: usize = 16;

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache::unbounded()
    }
}

impl AnswerCache {
    /// A cache that never evicts.
    pub fn unbounded() -> Self {
        Self::build(None)
    }

    /// A cache holding at most `capacity` entries in total (rounded up
    /// to the shard granularity). `capacity == 0` means unbounded — the
    /// `--cache-cap 0` CLI convention.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity == 0 {
            Self::unbounded()
        } else {
            Self::build(Some(capacity.div_ceil(SHARDS)))
        }
    }

    fn build(shard_cap: Option<usize>) -> Self {
        AnswerCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up an answer, counting the hit or miss. A hit refreshes the
    /// entry's recency, so it moves to the back of the eviction order.
    pub fn get(&self, db: DbId, question: &str, fingerprint: ConfigFingerprint) -> Option<String> {
        let idx = CacheKey::shard_index(db, question, fingerprint, self.shards.len());
        let key = CacheKey { db, question: question.to_string(), fingerprint };
        let mut shard = self.shards[idx].lock();
        let found = shard.map.get(&key).map(|entry| entry.answer.clone());
        if found.is_some() {
            shard.touch(key);
            drop(shard);
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts an answer, evicting the shard's least-recently-used
    /// entries beyond the capacity cap. Returns the number of evictions
    /// performed. Racing inserts of the same key are idempotent (answers
    /// are deterministic, so both writers carry the same value); a
    /// re-insert refreshes the entry's recency like a hit.
    pub fn insert(
        &self,
        db: DbId,
        question: &str,
        fingerprint: ConfigFingerprint,
        answer: String,
    ) -> u64 {
        let key = CacheKey { db, question: question.to_string(), fingerprint };
        let idx = CacheKey::shard_index(db, question, fingerprint, self.shards.len());
        let mut shard = self.shards[idx].lock();
        let fresh = !shard.map.contains_key(&key);
        if fresh {
            shard.map.insert(key.clone(), Entry { answer, stamp: 0 });
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
        shard.touch(key);
        let evicted = match self.shard_cap {
            Some(cap) => shard.evict_to(cap),
            None => 0,
        };
        drop(shard);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Anything that answers questions deterministically per
/// `(db, question)` under a fingerprinted configuration: the FinSQL
/// system and both baseline families. The provided [`Answerer::answer_cached`]
/// is the single cache read/compute/fill path every caller shares.
pub trait Answerer: Sync {
    /// The fingerprint of every answer-affecting knob of this system.
    fn fingerprint(&self) -> ConfigFingerprint;

    /// Computes an answer from scratch (no cache involvement). Must be
    /// deterministic per `(db, question)` — seed any randomness from the
    /// question, as [`crate::pipeline::FinSql::question_rng`] does.
    fn answer_fresh(&self, db: DbId, question: &str, metrics: Option<&EvalMetrics>) -> String;

    /// Answers through the cache: hit returns the stored answer, miss
    /// computes outside the lock and fills. Cache traffic is recorded in
    /// the metrics sink when one is given.
    fn answer_cached(
        &self,
        cache: &AnswerCache,
        db: DbId,
        question: &str,
        metrics: Option<&EvalMetrics>,
    ) -> String {
        let fingerprint = self.fingerprint();
        if let Some(hit) = cache.get(db, question, fingerprint) {
            if let Some(m) = metrics {
                m.record_cache_hit();
            }
            return hit;
        }
        let answer = self.answer_fresh(db, question, metrics);
        let evicted = cache.insert(db, question, fingerprint, answer.clone());
        if let Some(m) = metrics {
            m.record_cache_miss(evicted);
        }
        answer
    }

    /// [`Answerer::answer_cached`] with an optional cache — the shape the
    /// bench harness uses under its `--no-cache` flag.
    fn answer_maybe_cached(
        &self,
        cache: Option<&AnswerCache>,
        db: DbId,
        question: &str,
        metrics: Option<&EvalMetrics>,
    ) -> String {
        match cache {
            Some(c) => self.answer_cached(c, db, question, metrics),
            None => self.answer_fresh(db, question, metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> ConfigFingerprint {
        ConfigFingerprint(v)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = AnswerCache::unbounded();
        assert_eq!(cache.get(DbId::Fund, "q", fp(1)), None);
        cache.insert(DbId::Fund, "q", fp(1), "SELECT 1".into());
        assert_eq!(cache.get(DbId::Fund, "q", fp(1)).as_deref(), Some("SELECT 1"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn fingerprint_partitions_the_key_space() {
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "q", fp(1), "old".into());
        // Same db+question under a different config must miss.
        assert_eq!(cache.get(DbId::Fund, "q", fp(2)), None);
        // And the same fingerprint on another db must miss too.
        assert_eq!(cache.get(DbId::Stock, "q", fp(1)), None);
    }

    #[test]
    fn capacity_caps_entries_and_counts_evictions() {
        let cache = AnswerCache::with_capacity(SHARDS); // one entry per shard
        for i in 0..200 {
            cache.insert(DbId::Fund, &format!("q{i}"), fp(0), format!("a{i}"));
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARDS, "{} entries resident", stats.entries);
        assert_eq!(stats.inserts, 200);
        assert_eq!(stats.evictions, 200 - stats.entries as u64);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = AnswerCache::with_capacity(0);
        for i in 0..100 {
            cache.insert(DbId::Macro, &format!("q{i}"), fp(0), String::new());
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "q", fp(1), "a".into());
        cache.insert(DbId::Fund, "q", fp(1), "a".into());
        let stats = cache.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
    }

    /// Questions that hash to the wanted shard — lets the tests drive a
    /// single shard's eviction order deterministically.
    fn same_shard_questions(n: usize) -> Vec<String> {
        let want =
            CacheKey::shard_index(DbId::Fund, "anchor", fp(0), SHARDS);
        let mut out = vec!["anchor".to_string()];
        let mut i = 0;
        while out.len() < n {
            let q = format!("probe{i}");
            if CacheKey::shard_index(DbId::Fund, &q, fp(0), SHARDS) == want {
                out.push(q);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn hit_refreshes_recency_so_lru_is_evicted_not_fifo() {
        // Shard capacity 2: with three same-shard keys the third insert
        // must evict exactly one of the first two.
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_capacity(2 * SHARDS);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0".into());
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1".into());
        // Touch the older entry: under FIFO it would die next; under LRU
        // the untouched qs[1] is now least recently used.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        let evicted = cache.insert(DbId::Fund, &qs[2], fp(0), "a2".into());
        assert_eq!(evicted, 1);
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some(), "hit entry survived");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none(), "LRU entry evicted");
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_recency_too() {
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_capacity(2 * SHARDS);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0".into());
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1".into());
        // Re-inserting qs[0] (idempotent value) must also refresh it.
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0".into());
        cache.insert(DbId::Fund, &qs[2], fp(0), "a2".into());
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none());
    }

    #[test]
    fn repeated_hits_do_not_grow_the_recency_queue_unboundedly() {
        let cache = AnswerCache::with_capacity(SHARDS);
        cache.insert(DbId::Fund, "hot", fp(0), "a".into());
        for _ in 0..10_000 {
            assert!(cache.get(DbId::Fund, "hot", fp(0)).is_some());
        }
        let idx = CacheKey::shard_index(DbId::Fund, "hot", fp(0), SHARDS);
        let order_len = cache.shards[idx].lock().order.len();
        assert!(order_len <= 9, "{order_len} recency records for 1 entry");
        assert_eq!(cache.stats().hits, 10_000);
    }

    #[test]
    fn stamp_overflow_renormalises_and_preserves_lru_order() {
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_capacity(2 * SHARDS);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0".into());
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1".into());
        // Pin the shard's counter one stamp below the top.
        let idx = CacheKey::shard_index(DbId::Fund, &qs[0], fp(0), SHARDS);
        cache.shards[idx].lock().next_stamp = u64::MAX - 1;
        // Two hits across the boundary: the first takes stamp u64::MAX,
        // the second forces renormalisation. Pre-fix, `next_stamp += 1`
        // overflowed here — a panic in debug builds, and in release a
        // wrap to stamp 1 colliding with the oldest live record.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        // LRU order survived renormalisation: qs[1] is least recent.
        let evicted = cache.insert(DbId::Fund, &qs[2], fp(0), "a2".into());
        assert_eq!(evicted, 1);
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some(), "hot entry survived");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none(), "LRU entry evicted");
        // And the counter restarted just above the live entries.
        assert!(cache.shards[idx].lock().next_stamp < 100);
    }

    #[test]
    fn interleaved_hits_pin_exact_eviction_order() {
        // Shard capacity 3, five same-shard keys, hits interleaved with
        // inserts: the eviction sequence is fully determined, so any
        // change to the stamp/compaction machinery that reorders
        // recency shows up as the wrong victim here.
        let qs = same_shard_questions(5);
        let cache = AnswerCache::with_capacity(3 * SHARDS);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0".into());
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1".into());
        cache.insert(DbId::Fund, &qs[2], fp(0), "a2".into());
        // Refresh 0 then 2 → recency (LRU→MRU): 1, 0, 2.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_some());
        assert_eq!(cache.insert(DbId::Fund, &qs[3], fp(0), "a3".into()), 1, "evicts qs[1]");
        // Recency now: 0, 2, 3. Refresh 0 → 2, 3, 0.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert_eq!(cache.insert(DbId::Fund, &qs[4], fp(0), "a4".into()), 1, "evicts qs[2]");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none());
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_none());
        for live in [&qs[0], &qs[3], &qs[4]] {
            assert!(cache.get(DbId::Fund, live, fp(0)).is_some(), "{live} must be resident");
        }
    }

    #[test]
    fn builder_slots_are_order_sensitive() {
        let a = FingerprintBuilder::new("t").push_u64(1).push_u64(2).finish();
        let b = FingerprintBuilder::new("t").push_u64(2).push_u64(1).finish();
        assert_ne!(a, b);
        let c = FingerprintBuilder::new("t").push_str("ab").push_str("c").finish();
        let d = FingerprintBuilder::new("t").push_str("a").push_str("bc").finish();
        assert_ne!(c, d, "length prefixing keeps the stream prefix-free");
    }

    struct Upper;
    impl Answerer for Upper {
        fn fingerprint(&self) -> ConfigFingerprint {
            FingerprintBuilder::new("upper").finish()
        }
        fn answer_fresh(&self, _db: DbId, q: &str, _m: Option<&EvalMetrics>) -> String {
            q.to_ascii_uppercase()
        }
    }

    #[test]
    fn answerer_default_path_fills_and_hits() {
        let cache = AnswerCache::unbounded();
        let m = EvalMetrics::new();
        let a = Upper.answer_cached(&cache, DbId::Fund, "select x", Some(&m));
        let b = Upper.answer_cached(&cache, DbId::Fund, "select x", Some(&m));
        assert_eq!(a, "SELECT X");
        assert_eq!(a, b);
        let snap = m.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_eq!(Upper.answer_maybe_cached(None, DbId::Fund, "y", None), "Y");
        assert_eq!(cache.len(), 1, "uncached path must not touch the cache");
    }
}
