//! Keyed answer caching — the serving layer in front of the pipeline.
//!
//! [`FinSql::answer`](crate::pipeline::FinSql::answer) is deterministic
//! per `(database, question)` because every RNG draw is seeded from
//! [`question_rng`](crate::pipeline::FinSql::question_rng); a cached
//! answer is therefore *exactly* the answer a recomputation would
//! produce. What can silently change an answer is configuration: linker
//! top-k, candidate count, calibration steps, the base-model profile or
//! the plugins loaded per database. [`ConfigFingerprint`] hashes every
//! one of those knobs into the cache key, so a stale-config hit is
//! structurally impossible — a changed knob changes the key and the old
//! entry is simply never found.
//!
//! [`AnswerCache`] is sharded and lock-striped: keys are spread over
//! independently-locked shards by a full FNV key hash that is reused as
//! the shard's bucket key, so a lookup never allocates — the question is
//! compared borrowed and interned into an `Arc<str>` only when an entry
//! is first admitted. Answers are `Arc<str>` too: a hit is a refcount
//! bump, never a copy.
//!
//! Eviction is selected by [`CachePolicy`]:
//!
//! * [`CachePolicy::Lru`] — the reference policy: each shard evicts its
//!   least-recently-used entry once its capacity cap is reached.
//! * [`CachePolicy::SlruTinyLfu`] (default) — segmented LRU with TinyLFU
//!   admission. Each shard is split into a *probationary* and a
//!   *protected* segment: new entries enter probation, a probationary
//!   hit promotes the entry into the protected segment (bounded at ~80%
//!   of the shard, demoting its own LRU back to probation when it
//!   overflows), and at capacity a candidate may displace the eviction
//!   victim only when the shard's [`FrequencySketch`] estimates the
//!   candidate's recent lookup frequency *strictly above* the victim's.
//!   A flood of one-shot questions therefore bounces off a full shard
//!   instead of flushing the hot set.
//!
//! The policy can only change *hit or miss*, never an answer: every
//! entry stores the deterministic answer for its key, and a rejected or
//! evicted entry is simply recomputed — byte-identical — on the next
//! miss. Recency is tracked lazily in per-segment queues: each touch
//! stamps the entry and appends `(stamp, key)`, eviction pops the queue
//! front skipping stale stamps, and a queue is compacted when stale
//! records outnumber live ones — so `get` never scans a queue.
//! [`Answerer`] is the trait the FinSQL system and the fine-tuning/GPT
//! baselines share so the bench harness can thread one cache through
//! any of them.

use crate::metrics::EvalMetrics;
use crate::tinylfu::FrequencySketch;
use bull::DbId;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stable hash of every configuration knob that can change an answer.
///
/// Two systems with equal fingerprints produce byte-identical answers
/// for the same `(db, question)`; any single knob mutation yields a
/// different fingerprint (each field occupies a fixed-width slot in the
/// underlying FNV-1a stream, and FNV-1a's per-byte step `h = (h ^ b) * p`
/// is injective in `h` for odd `p`, so a difference introduced at one
/// slot can never be cancelled by identical later slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigFingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental builder for a [`ConfigFingerprint`]. Fields must be
/// pushed in a fixed order; strings are length-prefixed so the byte
/// stream stays prefix-free.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    h: u64,
}

impl FingerprintBuilder {
    /// Starts a fingerprint under a domain label (so e.g. a FinSQL
    /// system and a baseline with coincidentally equal knobs can never
    /// share keys).
    pub fn new(domain: &str) -> Self {
        FingerprintBuilder { h: FNV_OFFSET }.push_str(domain)
    }

    fn push_byte(mut self, b: u8) -> Self {
        self.h = (self.h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self
    }

    /// Pushes a 64-bit value as a fixed-width little-endian slot.
    pub fn push_u64(mut self, v: u64) -> Self {
        for b in v.to_le_bytes() {
            self = self.push_byte(b);
        }
        self
    }

    pub fn push_usize(self, v: usize) -> Self {
        self.push_u64(v as u64)
    }

    pub fn push_bool(self, v: bool) -> Self {
        self.push_u64(u64::from(v))
    }

    /// Pushes a float by bit pattern (`-0.0` and `0.0` differ, NaNs are
    /// stable — fine for configuration knobs that are never computed).
    pub fn push_f64(self, v: f64) -> Self {
        self.push_u64(v.to_bits())
    }

    /// Pushes a length-prefixed string.
    pub fn push_str(mut self, s: &str) -> Self {
        self = self.push_u64(s.len() as u64);
        for b in s.as_bytes() {
            self = self.push_byte(*b);
        }
        self
    }

    pub fn finish(self) -> ConfigFingerprint {
        ConfigFingerprint(self.h)
    }
}

/// Eviction/admission policy of an [`AnswerCache`].
///
/// The policy is deliberately **not** part of [`ConfigFingerprint`]:
/// like `link_mode`, toggling it cannot change any answer — entries
/// store the deterministic answer for their key, so a policy can only
/// decide *which* keys stay resident (hit vs recompute), never *what*
/// is returned for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Plain least-recently-used eviction per shard — the reference
    /// policy, kept for differential testing and `--cache-policy lru`.
    Lru,
    /// Segmented LRU (probationary/protected) with a TinyLFU frequency
    /// sketch deciding admission at capacity. The default: skew-aware,
    /// scan-resistant.
    #[default]
    SlruTinyLfu,
}

impl CachePolicy {
    pub const ALL: [CachePolicy; 2] = [CachePolicy::Lru, CachePolicy::SlruTinyLfu];

    pub fn as_str(&self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::SlruTinyLfu => "slru-tinylfu",
        }
    }

    /// Parses the `--cache-policy` flag value.
    pub fn parse(s: &str) -> Option<CachePolicy> {
        match s {
            "lru" => Some(CachePolicy::Lru),
            "slru-tinylfu" | "slru" | "tinylfu" => Some(CachePolicy::SlruTinyLfu),
            _ => None,
        }
    }
}

impl std::fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The full FNV key hash — used for shard routing *and* as the bucket
/// key inside the shard, so a lookup needs no allocation and no second
/// hash pass.
fn key_hash(db: DbId, question: &str, fingerprint: ConfigFingerprint) -> u64 {
    FingerprintBuilder::new(db.as_str())
        .push_str(question)
        .push_u64(fingerprint.0)
        .finish()
        .0
}

/// A cache-key question as the caller holds it: anything string-shaped,
/// optionally carrying an already-interned `Arc<str>` allocation the
/// cache can share on insert instead of copying the question bytes.
///
/// The scheduler's request path interns each question once at submit
/// time and threads that `Arc<str>` all the way to the cache fill, so an
/// admitted insert is a refcount bump of the caller's allocation — the
/// no-clone invariant `bench::traffic::key_interning_probe` asserts with
/// `Arc::ptr_eq`. Plain `&str`/`String` callers fall back to one copy at
/// admission time (and only then — a rejected or resident insert never
/// copies).
pub trait QuestionKey {
    /// The question text, borrowed.
    fn as_str(&self) -> &str;

    /// The interned allocation, when the caller already has one; `None`
    /// means the cache copies the bytes if (and only if) it admits the
    /// key.
    fn shared(&self) -> Option<&Arc<str>> {
        None
    }
}

impl QuestionKey for str {
    fn as_str(&self) -> &str {
        self
    }
}

impl QuestionKey for String {
    fn as_str(&self) -> &str {
        self
    }
}

impl QuestionKey for Arc<str> {
    fn as_str(&self) -> &str {
        self
    }

    fn shared(&self) -> Option<&Arc<str>> {
        Some(self)
    }
}

impl<Q: QuestionKey + ?Sized> QuestionKey for &Q {
    fn as_str(&self) -> &str {
        (**self).as_str()
    }

    fn shared(&self) -> Option<&Arc<str>> {
        (**self).shared()
    }
}

/// One cache key: the question pinned to its database and the full
/// configuration fingerprint of the system that answers it. The
/// question is interned as `Arc<str>` — cloning a key for a recency
/// record is a refcount bump, not a string copy — and the precomputed
/// FNV hash rides along so no path ever rehashes the question.
#[derive(Debug, Clone)]
struct CacheKey {
    h: u64,
    db: DbId,
    question: Arc<str>,
    fingerprint: ConfigFingerprint,
}

impl CacheKey {
    /// Does this resident key match a borrowed lookup?
    fn matches(&self, db: DbId, question: &str, fingerprint: ConfigFingerprint) -> bool {
        self.db == db && self.fingerprint == fingerprint && &*self.question == question
    }

    /// Equality against another interned key (recency records clone the
    /// resident key, so the pointer check almost always short-circuits).
    fn same_key(&self, other: &CacheKey) -> bool {
        self.h == other.h
            && self.db == other.db
            && self.fingerprint == other.fingerprint
            && (Arc::ptr_eq(&self.question, &other.question) || self.question == other.question)
    }
}

/// Which SLRU segment an entry currently lives in. Under
/// [`CachePolicy::Lru`] every entry stays [`Seg::Probation`] — one
/// segment *is* plain LRU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Probation,
    Protected,
}

/// One resident entry: the shared answer, the stamp of its latest touch
/// and its current segment.
#[derive(Debug)]
struct Entry {
    answer: Arc<str>,
    stamp: u64,
    seg: Seg,
}

/// Policy context threaded from the cache into shard operations: the
/// policy plus the per-shard capacity caps derived from it.
#[derive(Debug, Clone, Copy)]
struct PolicyCtx {
    policy: CachePolicy,
    /// Max entries per shard; `None` = unbounded.
    shard_cap: Option<usize>,
    /// Max protected entries per shard; `None` = unbounded.
    protected_cap: Option<usize>,
}

/// What a shard-level refresh (hit or idempotent re-insert) did.
#[derive(Debug)]
struct Refreshed {
    answer: Arc<str>,
    promoted: bool,
    demotions: u64,
}

/// What a shard-level insert did.
#[derive(Debug)]
enum ShardInsert {
    /// A new entry was admitted (evicting `evicted` victims under a cap).
    Fresh { evicted: u64 },
    /// The key was already resident — recency refreshed like a hit.
    Resident { promoted: bool, demotions: u64 },
    /// TinyLFU admission rejected the candidate: its estimated frequency
    /// did not beat the eviction victim's, so the shard is unchanged.
    Rejected,
}

/// One lock-striped shard: hash-bucketed entries plus lazily-maintained
/// per-segment recency queues. Every touch (insert, hit, promotion,
/// demotion) takes a fresh stamp and appends `(stamp, key)` to the queue
/// of the entry's segment; a record whose stamp no longer matches its
/// entry's is stale and is skipped at eviction time and dropped at
/// compaction time. Stamps are unique per shard, so a stamp match also
/// proves the record sits in the entry's current segment queue.
#[derive(Debug, Default)]
struct Shard {
    /// Entries bucketed by full key hash; the inner `Vec` holds hash
    /// collisions (virtually always length 1). Never iterated — all
    /// access is keyed — so no `HashMap` order can leak anywhere.
    buckets: HashMap<u64, Vec<(CacheKey, Entry)>>,
    /// Resident entries (sum of bucket lengths, tracked directly).
    live: usize,
    /// Resident entries currently in the protected segment.
    protected_live: usize,
    /// Recency queue of the probationary segment (the only queue under
    /// plain LRU).
    probation: VecDeque<(u64, CacheKey)>,
    /// Recency queue of the protected segment.
    protected: VecDeque<(u64, CacheKey)>,
    next_stamp: u64,
    /// TinyLFU frequency sketch — present only under
    /// [`CachePolicy::SlruTinyLfu`] with a capacity cap.
    sketch: Option<FrequencySketch>,
}

/// The stamp of the resident entry for `key`, if any.
fn entry_stamp(
    buckets: &HashMap<u64, Vec<(CacheKey, Entry)>>,
    key: &CacheKey,
) -> Option<u64> {
    buckets.get(&key.h)?.iter().find(|(k, _)| k.same_key(key)).map(|(_, e)| e.stamp)
}

/// Drops every stale queue record, keeping live ones in order.
fn compact_queue(
    buckets: &HashMap<u64, Vec<(CacheKey, Entry)>>,
    queue: &mut VecDeque<(u64, CacheKey)>,
) {
    queue.retain(|(stamp, key)| entry_stamp(buckets, key) == Some(*stamp));
}

/// Re-issues stamps `fresh+1..` to a compacted queue in order, keeping
/// each record's entry in step. Returns the last stamp issued.
fn renumber_queue(
    buckets: &mut HashMap<u64, Vec<(CacheKey, Entry)>>,
    queue: &mut VecDeque<(u64, CacheKey)>,
    mut fresh: u64,
) -> u64 {
    for (stamp, key) in queue.iter_mut() {
        fresh += 1;
        if let Some(bucket) = buckets.get_mut(&key.h) {
            if let Some((_, entry)) = bucket.iter_mut().find(|(k, _)| k.same_key(key)) {
                entry.stamp = fresh;
            }
        }
        *stamp = fresh;
    }
    fresh
}

impl Shard {
    /// Hands out the next recency stamp (monotonic per shard). At the
    /// top of the counter the shard renumbers itself instead of
    /// overflowing: a wrapped counter re-issues stamps that still sit
    /// live in the queues, so stale records would start passing the
    /// liveness check and eviction order would silently corrupt.
    fn stamp(&mut self) -> u64 {
        if self.next_stamp == u64::MAX {
            self.renumber();
        }
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Stamp renormalisation: drop stale queue records, then re-issue
    /// stamps `1..=k` to the surviving records in queue order (which is
    /// exactly chronological touch order per segment, so relative
    /// recency — and therefore eviction order — is preserved bit for
    /// bit) and restart the counter above them.
    fn renumber(&mut self) {
        compact_queue(&self.buckets, &mut self.probation);
        compact_queue(&self.buckets, &mut self.protected);
        let fresh = renumber_queue(&mut self.buckets, &mut self.probation, 0);
        let fresh = renumber_queue(&mut self.buckets, &mut self.protected, fresh);
        self.next_stamp = fresh;
    }

    /// Appends a recency record to the segment's queue, compacting it
    /// when stale records outnumber live entries — amortised O(1).
    fn push_record(&mut self, seg: Seg, stamp: u64, key: CacheKey) {
        let seg_live = match seg {
            Seg::Probation => self.live - self.protected_live,
            Seg::Protected => self.protected_live,
        };
        let queue = match seg {
            Seg::Probation => &mut self.probation,
            Seg::Protected => &mut self.protected,
        };
        queue.push_back((stamp, key));
        if queue.len() > 2 * seg_live.max(4) {
            compact_queue(&self.buckets, queue);
        }
    }

    /// Marks a resident key most-recently-used: fresh stamp, promotion
    /// out of probation under SLRU (demoting the protected LRU when that
    /// segment overflows). Returns `None` when the key is not resident.
    fn refresh(
        &mut self,
        h: u64,
        db: DbId,
        question: &str,
        fingerprint: ConfigFingerprint,
        ctx: PolicyCtx,
    ) -> Option<Refreshed> {
        let stamp = self.stamp();
        let bucket = self.buckets.get_mut(&h)?;
        let (key, entry) =
            bucket.iter_mut().find(|(k, _)| k.matches(db, question, fingerprint))?;
        let answer = Arc::clone(&entry.answer);
        let key = key.clone();
        entry.stamp = stamp;
        let promoted =
            ctx.policy == CachePolicy::SlruTinyLfu && entry.seg == Seg::Probation;
        if promoted {
            entry.seg = Seg::Protected;
        }
        let seg = entry.seg;
        self.push_record(seg, stamp, key);
        let mut demotions = 0;
        if promoted {
            self.protected_live += 1;
            if let Some(cap) = ctx.protected_cap {
                demotions = self.demote_to(cap);
            }
        }
        Some(Refreshed { answer, promoted, demotions })
    }

    /// Looks the key up, recording the lookup in the frequency sketch
    /// (hit or miss — TinyLFU counts *requests*, not residency).
    fn get(
        &mut self,
        h: u64,
        db: DbId,
        question: &str,
        fingerprint: ConfigFingerprint,
        ctx: PolicyCtx,
    ) -> Option<Refreshed> {
        if let Some(sketch) = self.sketch.as_mut() {
            sketch.record(h);
        }
        self.refresh(h, db, question, fingerprint, ctx)
    }

    /// Demotes protected LRU entries back to probation (as its MRU)
    /// until the protected segment fits `cap`. Returns demotions done.
    fn demote_to(&mut self, cap: usize) -> u64 {
        let mut demoted = 0;
        while self.protected_live > cap {
            let Some((stamp, key)) = self.protected.pop_front() else { break };
            if entry_stamp(&self.buckets, &key) != Some(stamp) {
                continue; // stale record — a newer one speaks for the key
            }
            let fresh = self.stamp();
            if let Some(bucket) = self.buckets.get_mut(&key.h) {
                if let Some((_, entry)) = bucket.iter_mut().find(|(k, _)| k.same_key(&key)) {
                    entry.seg = Seg::Probation;
                    entry.stamp = fresh;
                }
            }
            self.protected_live -= 1;
            self.push_record(Seg::Probation, fresh, key);
            demoted += 1;
        }
        demoted
    }

    /// The key hash of the entry the next eviction would remove:
    /// probationary LRU first, protected LRU once probation is empty.
    /// Pops stale records on the way, so the live victim record is left
    /// at its queue's front.
    fn victim_peek(&mut self) -> Option<u64> {
        for seg in [Seg::Probation, Seg::Protected] {
            let queue = match seg {
                Seg::Probation => &mut self.probation,
                Seg::Protected => &mut self.protected,
            };
            while let Some((stamp, key)) = queue.front() {
                if entry_stamp(&self.buckets, key) == Some(*stamp) {
                    return Some(key.h);
                }
                queue.pop_front();
            }
        }
        None
    }

    /// Evicts the current victim (see [`Shard::victim_peek`]). Returns
    /// `false` when the shard has no live entry to evict.
    fn evict_front(&mut self) -> bool {
        for seg in [Seg::Probation, Seg::Protected] {
            loop {
                let record = match seg {
                    Seg::Probation => self.probation.pop_front(),
                    Seg::Protected => self.protected.pop_front(),
                };
                let Some((stamp, key)) = record else { break };
                if entry_stamp(&self.buckets, &key) != Some(stamp) {
                    continue; // stale — the key was touched again later
                }
                self.remove_entry(&key);
                return true;
            }
        }
        false
    }

    /// Removes a resident entry, keeping the live counters in step.
    fn remove_entry(&mut self, key: &CacheKey) {
        let Some(bucket) = self.buckets.get_mut(&key.h) else { return };
        let Some(i) = bucket.iter().position(|(k, _)| k.same_key(key)) else { return };
        let (_, entry) = bucket.swap_remove(i);
        let empty = bucket.is_empty();
        if empty {
            self.buckets.remove(&key.h);
        }
        self.live -= 1;
        if entry.seg == Seg::Protected {
            self.protected_live -= 1;
        }
    }

    /// Evicts victims until at most `cap` entries remain (plain LRU's
    /// post-insert trim). Returns how many were removed.
    fn evict_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.live > cap {
            if !self.evict_front() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// Inserts a key, refreshing it when already resident and running
    /// the TinyLFU admission duel at capacity under `SlruTinyLfu`.
    /// `shared` is the caller's already-interned question allocation;
    /// when present an admitted key is a refcount bump of it, otherwise
    /// the bytes are copied once at admission.
    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        h: u64,
        db: DbId,
        question: &str,
        shared: Option<&Arc<str>>,
        fingerprint: ConfigFingerprint,
        answer: Arc<str>,
        ctx: PolicyCtx,
    ) -> ShardInsert {
        // Racing inserts of the same key are idempotent (answers are
        // deterministic, so both writers carry the same value); a
        // re-insert refreshes the entry's recency like a hit.
        if let Some(refreshed) = self.refresh(h, db, question, fingerprint, ctx) {
            return ShardInsert::Resident {
                promoted: refreshed.promoted,
                demotions: refreshed.demotions,
            };
        }
        let mut evicted = 0;
        if ctx.policy == CachePolicy::SlruTinyLfu {
            if let Some(cap) = ctx.shard_cap {
                // At capacity the candidate must win the admission duel:
                // its sketch frequency strictly above the victim's. The
                // victim is evicted *before* the candidate lands so the
                // entry displaced is exactly the one the duel was
                // against.
                while self.live >= cap {
                    let Some(victim) = self.victim_peek() else { break };
                    let admit = match self.sketch.as_ref() {
                        Some(sketch) => sketch.estimate(h) > sketch.estimate(victim),
                        None => true,
                    };
                    if !admit {
                        return ShardInsert::Rejected;
                    }
                    if !self.evict_front() {
                        break;
                    }
                    evicted += 1;
                }
            }
        }
        let stamp = self.stamp();
        // The only byte copy on the insert path — skipped entirely when
        // the caller supplied its interned allocation.
        let question = match shared {
            Some(interned) => Arc::clone(interned),
            None => Arc::from(question),
        };
        let key = CacheKey { h, db, question, fingerprint };
        self.buckets
            .entry(h)
            .or_default()
            .push((key.clone(), Entry { answer, stamp, seg: Seg::Probation }));
        self.live += 1;
        self.push_record(Seg::Probation, stamp, key);
        if ctx.policy == CachePolicy::Lru {
            if let Some(cap) = ctx.shard_cap {
                evicted += self.evict_to(cap);
            }
        }
        ShardInsert::Fresh { evicted }
    }

    /// `(live, protected_live, sketch agings)` — read under one lock.
    fn counts(&self) -> (usize, usize, u64) {
        let agings = match self.sketch.as_ref() {
            Some(sketch) => sketch.agings(),
            None => 0,
        };
        (self.live, self.protected_live, agings)
    }
}

/// Monotonic counters of one cache's lifetime, snapshot by
/// [`AnswerCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    /// Inserts turned away by the TinyLFU admission duel (the candidate
    /// did not beat the eviction victim's estimated frequency). Always 0
    /// under [`CachePolicy::Lru`].
    pub admission_rejected: u64,
    /// Probation → protected promotions (a probationary entry was hit).
    pub promotions: u64,
    /// Protected → probation demotions (the protected segment overflowed).
    pub demotions: u64,
    /// TinyLFU sketch aging (halving) passes across all shards.
    pub agings: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries currently in the protected segment.
    pub protected_entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// What an [`AnswerCache::insert`] did, as the caller sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `false` only when the TinyLFU admission duel rejected the
    /// candidate — the answer was still returned to the caller, the
    /// cache just chose not to keep it.
    pub admitted: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
}

/// Sharded, lock-striped answer cache keyed by
/// `(DbId, question, ConfigFingerprint)`.
#[derive(Debug)]
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; `None` = unbounded.
    shard_cap: Option<usize>,
    policy: CachePolicy,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    admission_rejected: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

/// Shard count: enough stripes that a worker pool sized to typical core
/// counts rarely contends, cheap enough to iterate for stats.
const SHARDS: usize = 16;

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache::unbounded()
    }
}

impl AnswerCache {
    /// A cache that never evicts (so the policy never has to decide
    /// anything: admission only engages at a capacity cap).
    pub fn unbounded() -> Self {
        Self::build(None, CachePolicy::default())
    }

    /// A cache holding at most `capacity` entries in total (rounded up
    /// to the shard granularity) under the default policy
    /// ([`CachePolicy::SlruTinyLfu`]). `capacity == 0` means unbounded —
    /// the `--cache-cap 0` CLI convention.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, CachePolicy::default())
    }

    /// A cache with an explicit eviction/admission policy.
    pub fn with_policy(capacity: usize, policy: CachePolicy) -> Self {
        if capacity == 0 {
            Self::build(None, policy)
        } else {
            Self::build(Some(capacity.div_ceil(SHARDS)), policy)
        }
    }

    fn build(shard_cap: Option<usize>, policy: CachePolicy) -> Self {
        let sketch_for = |_: usize| match (policy, shard_cap) {
            (CachePolicy::SlruTinyLfu, Some(cap)) => Some(FrequencySketch::new(cap)),
            _ => None,
        };
        AnswerCache {
            shards: (0..SHARDS)
                .map(|i| Mutex::new(Shard { sketch: sketch_for(i), ..Shard::default() }))
                .collect(),
            shard_cap,
            policy,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// How many lock stripes the cache spreads keys over.
    pub fn shard_count() -> usize {
        SHARDS
    }

    /// The protected-segment cap for a shard of `shard_cap` entries:
    /// ~80% of the shard (classic SLRU split), at least one so a hot
    /// entry can always be protected.
    pub fn protected_shard_cap(shard_cap: usize) -> usize {
        (shard_cap * 4 / 5).max(1)
    }

    /// Per-shard capacity cap (`None` = unbounded) — exposed for tests
    /// asserting per-segment bounds.
    pub fn shard_cap(&self) -> Option<usize> {
        self.shard_cap
    }

    fn ctx(&self) -> PolicyCtx {
        PolicyCtx {
            policy: self.policy,
            shard_cap: self.shard_cap,
            protected_cap: self.shard_cap.map(Self::protected_shard_cap),
        }
    }

    /// Looks up an answer, counting the hit or miss. A hit refreshes the
    /// entry's recency (promoting probationary entries under SLRU); hit
    /// or miss, the lookup feeds the shard's TinyLFU frequency sketch.
    /// Allocation-free: the hit is a refcount bump of the stored answer.
    pub fn get(
        &self,
        db: DbId,
        question: &str,
        fingerprint: ConfigFingerprint,
    ) -> Option<Arc<str>> {
        let h = key_hash(db, question, fingerprint);
        let idx = (h % self.shards.len() as u64) as usize;
        let ctx = self.ctx();
        let found = self.shards[idx].lock().get(h, db, question, fingerprint, ctx);
        match found {
            Some(refreshed) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if refreshed.promoted {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                }
                self.demotions.fetch_add(refreshed.demotions, Ordering::Relaxed);
                Some(refreshed.answer)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts an answer. Under a capacity cap, `Lru` evicts the
    /// least-recently-used entry; `SlruTinyLfu` first asks the frequency
    /// sketch whether the candidate beats the eviction victim and
    /// rejects the insert outright when it does not (`admitted: false`
    /// in the outcome — the caller still has its answer, the cache just
    /// kept the statistically hotter entry).
    ///
    /// The question is any [`QuestionKey`]: pass an `&Arc<str>` and an
    /// admitted key shares that allocation instead of copying the bytes.
    pub fn insert<Q: QuestionKey + ?Sized>(
        &self,
        db: DbId,
        question: &Q,
        fingerprint: ConfigFingerprint,
        answer: impl Into<Arc<str>>,
    ) -> InsertOutcome {
        let shared = question.shared();
        let question = question.as_str();
        let h = key_hash(db, question, fingerprint);
        let idx = (h % self.shards.len() as u64) as usize;
        let ctx = self.ctx();
        let result = self.shards[idx]
            .lock()
            .insert(h, db, question, shared, fingerprint, answer.into(), ctx);
        match result {
            ShardInsert::Fresh { evicted } => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
                InsertOutcome { admitted: true, evicted }
            }
            ShardInsert::Resident { promoted, demotions } => {
                if promoted {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                }
                self.demotions.fetch_add(demotions, Ordering::Relaxed);
                InsertOutcome { admitted: true, evicted: 0 }
            }
            ShardInsert::Rejected => {
                self.admission_rejected.fetch_add(1, Ordering::Relaxed);
                InsertOutcome { admitted: false, evicted: 0 }
            }
        }
    }

    /// The interned key allocation of a resident entry, if any — a
    /// read-only probe for the no-clone invariant: a caller that
    /// submitted an `Arc<str>` question can `Arc::ptr_eq` the returned
    /// key against its own allocation to prove the insert shared rather
    /// than copied. Unlike [`AnswerCache::get`] this touches neither
    /// recency nor the frequency sketch and counts no hit/miss.
    pub fn interned_key(
        &self,
        db: DbId,
        question: &str,
        fingerprint: ConfigFingerprint,
    ) -> Option<Arc<str>> {
        let h = key_hash(db, question, fingerprint);
        let idx = (h % self.shards.len() as u64) as usize;
        let shard = self.shards[idx].lock();
        shard
            .buckets
            .get(&h)?
            .iter()
            .find(|(k, _)| k.matches(db, question, fingerprint))
            .map(|(k, _)| Arc::clone(&k.question))
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut protected_entries = 0;
        let mut agings = 0;
        for shard in &self.shards {
            let (live, protected_live, shard_agings) = shard.lock().counts();
            entries += live;
            protected_entries += protected_live;
            agings += shard_agings;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            agings,
            entries,
            protected_entries,
        }
    }
}

/// Anything that answers questions deterministically per
/// `(db, question)` under a fingerprinted configuration: the FinSQL
/// system and both baseline families. The provided [`Answerer::answer_cached`]
/// is the single cache read/compute/fill path every caller shares.
pub trait Answerer: Sync {
    /// The fingerprint of every answer-affecting knob of this system.
    fn fingerprint(&self) -> ConfigFingerprint;

    /// Computes an answer from scratch (no cache involvement). Must be
    /// deterministic per `(db, question)` — seed any randomness from the
    /// question, as [`crate::pipeline::FinSql::question_rng`] does.
    fn answer_fresh(&self, db: DbId, question: &str, metrics: Option<&EvalMetrics>) -> String;

    /// Answers through the cache: hit returns the stored answer (a
    /// refcount bump, no copy), miss computes outside the lock and
    /// fills. Cache traffic is recorded in the metrics sink when one is
    /// given.
    fn answer_cached(
        &self,
        cache: &AnswerCache,
        db: DbId,
        question: &str,
        metrics: Option<&EvalMetrics>,
    ) -> Arc<str> {
        let fingerprint = self.fingerprint();
        if let Some(hit) = cache.get(db, question, fingerprint) {
            if let Some(m) = metrics {
                m.record_cache_hit();
            }
            return hit;
        }
        let answer: Arc<str> = Arc::from(self.answer_fresh(db, question, metrics));
        let outcome = cache.insert(db, question, fingerprint, Arc::clone(&answer));
        if let Some(m) = metrics {
            m.record_cache_miss(outcome.evicted);
            if !outcome.admitted {
                m.record_admission_rejected();
            }
        }
        answer
    }

    /// [`Answerer::answer_cached`] with an optional cache — the shape the
    /// bench harness uses under its `--no-cache` flag.
    fn answer_maybe_cached(
        &self,
        cache: Option<&AnswerCache>,
        db: DbId,
        question: &str,
        metrics: Option<&EvalMetrics>,
    ) -> Arc<str> {
        match cache {
            Some(c) => self.answer_cached(c, db, question, metrics),
            None => Arc::from(self.answer_fresh(db, question, metrics)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> ConfigFingerprint {
        ConfigFingerprint(v)
    }

    fn shard_index(db: DbId, question: &str, fingerprint: ConfigFingerprint) -> usize {
        (key_hash(db, question, fingerprint) % SHARDS as u64) as usize
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = AnswerCache::unbounded();
        assert_eq!(cache.get(DbId::Fund, "q", fp(1)), None);
        cache.insert(DbId::Fund, "q", fp(1), "SELECT 1");
        assert_eq!(cache.get(DbId::Fund, "q", fp(1)).as_deref(), Some("SELECT 1"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn hits_share_one_allocation() {
        // The answer is stored once; every hit is a refcount bump of the
        // same heap string — the hot path never copies.
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "q", fp(1), "SELECT 1");
        let a = cache.get(DbId::Fund, "q", fp(1)).expect("resident");
        let b = cache.get(DbId::Fund, "q", fp(1)).expect("resident");
        assert!(Arc::ptr_eq(&a, &b), "hits must share the stored allocation");
    }

    #[test]
    fn arc_question_insert_shares_the_callers_allocation() {
        // The interning contract: inserting an `Arc<str>` question must
        // make the admitted key a refcount bump of that allocation, not
        // a byte copy.
        let cache = AnswerCache::unbounded();
        let question: Arc<str> = Arc::from("how did the fund perform");
        cache.insert(DbId::Fund, &question, fp(1), "SELECT 1");
        let key = cache
            .interned_key(DbId::Fund, &question, fp(1))
            .expect("entry must be resident");
        assert!(
            Arc::ptr_eq(&key, &question),
            "admitted key must share the caller's allocation"
        );
        // And the entry behaves like any other: borrowed lookups hit.
        assert_eq!(cache.get(DbId::Fund, "how did the fund perform", fp(1)).as_deref(), Some("SELECT 1"));
    }

    #[test]
    fn str_insert_still_interns_by_copy() {
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "plain str question", fp(1), "a");
        let key = cache
            .interned_key(DbId::Fund, "plain str question", fp(1))
            .expect("entry must be resident");
        assert_eq!(&*key, "plain str question");
        // The probe is inert: no hit/miss counted, no recency touched.
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        assert_eq!(cache.interned_key(DbId::Fund, "absent", fp(1)), None);
    }

    #[test]
    fn fingerprint_partitions_the_key_space() {
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "q", fp(1), "old");
        // Same db+question under a different config must miss.
        assert_eq!(cache.get(DbId::Fund, "q", fp(2)), None);
        // And the same fingerprint on another db must miss too.
        assert_eq!(cache.get(DbId::Stock, "q", fp(1)), None);
    }

    #[test]
    fn capacity_caps_entries_and_counts_evictions() {
        let cache = AnswerCache::with_policy(SHARDS, CachePolicy::Lru); // one entry per shard
        for i in 0..200 {
            cache.insert(DbId::Fund, &format!("q{i}"), fp(0), format!("a{i}"));
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARDS, "{} entries resident", stats.entries);
        assert_eq!(stats.inserts, 200);
        assert_eq!(stats.evictions, 200 - stats.entries as u64);
    }

    #[test]
    fn admission_rejects_insert_only_churn_at_capacity() {
        // Under SlruTinyLfu an insert-without-lookups workload has every
        // candidate at frequency 0: once a shard is full, 0 > 0 never
        // holds and the resident set freezes instead of churning.
        let cache = AnswerCache::with_capacity(SHARDS);
        for i in 0..200 {
            cache.insert(DbId::Fund, &format!("q{i}"), fp(0), format!("a{i}"));
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARDS);
        assert_eq!(stats.evictions, 0, "admission must reject, not churn");
        assert_eq!(
            stats.inserts + stats.admission_rejected,
            200,
            "every insert either admitted or rejected"
        );
        assert!(stats.admission_rejected > 0);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = AnswerCache::with_capacity(0);
        for i in 0..100 {
            cache.insert(DbId::Macro, &format!("q{i}"), fp(0), String::new());
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let cache = AnswerCache::unbounded();
        cache.insert(DbId::Fund, "q", fp(1), "a");
        cache.insert(DbId::Fund, "q", fp(1), "a");
        let stats = cache.stats();
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
    }

    /// Questions that hash to the wanted shard — lets the tests drive a
    /// single shard's eviction order deterministically.
    fn same_shard_questions(n: usize) -> Vec<String> {
        let want = shard_index(DbId::Fund, "anchor", fp(0));
        let mut out = vec!["anchor".to_string()];
        let mut i = 0;
        while out.len() < n {
            let q = format!("probe{i}");
            if shard_index(DbId::Fund, &q, fp(0)) == want {
                out.push(q);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn hit_refreshes_recency_so_lru_is_evicted_not_fifo() {
        // Shard capacity 2: with three same-shard keys the third insert
        // must evict exactly one of the first two.
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_policy(2 * SHARDS, CachePolicy::Lru);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0");
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1");
        // Touch the older entry: under FIFO it would die next; under LRU
        // the untouched qs[1] is now least recently used.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        let outcome = cache.insert(DbId::Fund, &qs[2], fp(0), "a2");
        assert_eq!(outcome.evicted, 1);
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some(), "hit entry survived");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none(), "LRU entry evicted");
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_recency_too() {
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_policy(2 * SHARDS, CachePolicy::Lru);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0");
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1");
        // Re-inserting qs[0] (idempotent value) must also refresh it.
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0");
        cache.insert(DbId::Fund, &qs[2], fp(0), "a2");
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none());
    }

    #[test]
    fn repeated_hits_do_not_grow_the_recency_queues_unboundedly() {
        let cache = AnswerCache::with_capacity(SHARDS);
        cache.insert(DbId::Fund, "hot", fp(0), "a");
        for _ in 0..10_000 {
            assert!(cache.get(DbId::Fund, "hot", fp(0)).is_some());
        }
        let idx = shard_index(DbId::Fund, "hot", fp(0));
        let (prob_len, prot_len) = {
            let shard = cache.shards[idx].lock();
            (shard.probation.len(), shard.protected.len())
        };
        assert!(
            prob_len + prot_len <= 9,
            "{prob_len}+{prot_len} recency records for 1 entry"
        );
        assert_eq!(cache.stats().hits, 10_000);
    }

    #[test]
    fn stamp_overflow_renormalises_and_preserves_lru_order() {
        let qs = same_shard_questions(3);
        let cache = AnswerCache::with_policy(2 * SHARDS, CachePolicy::Lru);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0");
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1");
        // Pin the shard's counter one stamp below the top.
        let idx = shard_index(DbId::Fund, &qs[0], fp(0));
        cache.shards[idx].lock().next_stamp = u64::MAX - 1;
        // Two hits across the boundary: the first takes stamp u64::MAX,
        // the second forces renormalisation. An unchecked `+= 1` would
        // panic in debug builds here, and in release wrap to stamp 1
        // colliding with the oldest live record.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        // LRU order survived renormalisation: qs[1] is least recent.
        let outcome = cache.insert(DbId::Fund, &qs[2], fp(0), "a2");
        assert_eq!(outcome.evicted, 1);
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some(), "hot entry survived");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none(), "LRU entry evicted");
        // And the counter restarted just above the live entries.
        assert!(cache.shards[idx].lock().next_stamp < 100);
    }

    #[test]
    fn interleaved_hits_pin_exact_eviction_order() {
        // Shard capacity 3, five same-shard keys, hits interleaved with
        // inserts: the eviction sequence is fully determined, so any
        // change to the stamp/compaction machinery that reorders
        // recency shows up as the wrong victim here.
        let qs = same_shard_questions(5);
        let cache = AnswerCache::with_policy(3 * SHARDS, CachePolicy::Lru);
        cache.insert(DbId::Fund, &qs[0], fp(0), "a0");
        cache.insert(DbId::Fund, &qs[1], fp(0), "a1");
        cache.insert(DbId::Fund, &qs[2], fp(0), "a2");
        // Refresh 0 then 2 → recency (LRU→MRU): 1, 0, 2.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_some());
        assert_eq!(cache.insert(DbId::Fund, &qs[3], fp(0), "a3").evicted, 1, "evicts qs[1]");
        // Recency now: 0, 2, 3. Refresh 0 → 2, 3, 0.
        assert!(cache.get(DbId::Fund, &qs[0], fp(0)).is_some());
        assert_eq!(cache.insert(DbId::Fund, &qs[4], fp(0), "a4").evicted, 1, "evicts qs[2]");
        assert!(cache.get(DbId::Fund, &qs[1], fp(0)).is_none());
        assert!(cache.get(DbId::Fund, &qs[2], fp(0)).is_none());
        for live in [&qs[0], &qs[3], &qs[4]] {
            assert!(cache.get(DbId::Fund, live, fp(0)).is_some(), "{live} must be resident");
        }
    }

    #[test]
    fn probationary_hit_promotes_and_protected_segment_stays_bounded() {
        let qs = same_shard_questions(6);
        // Shard capacity 5 → protected cap 4.
        let cache = AnswerCache::with_policy(5 * SHARDS, CachePolicy::SlruTinyLfu);
        for (i, q) in qs.iter().enumerate().take(5) {
            cache.insert(DbId::Fund, q, fp(0), format!("a{i}"));
        }
        assert_eq!(cache.stats().protected_entries, 0, "fresh entries start probationary");
        // Hit all five: each first hit promotes; the fifth promotion
        // overflows the protected cap (4) and demotes the protected LRU.
        for q in qs.iter().take(5) {
            assert!(cache.get(DbId::Fund, q, fp(0)).is_some());
        }
        let stats = cache.stats();
        assert_eq!(stats.promotions, 5);
        assert_eq!(stats.demotions, 1);
        assert_eq!(
            stats.protected_entries,
            AnswerCache::protected_shard_cap(5),
            "protected segment must be trimmed to its cap"
        );
        assert_eq!(stats.entries, 5, "demotion moves, never removes");
    }

    #[test]
    fn one_shot_flood_keeps_hot_key_under_slru_but_not_lru() {
        // The adversarial workload from the ISSUE: one hot key with real
        // lookup traffic, then a flood of one-shot keys. Plain LRU
        // provably evicts the hot key (the flood exceeds capacity with
        // no intervening hot hits); SLRU+TinyLFU holds it (the hot key
        // is protected, and frequency-0..1 flood keys cannot beat
        // resident victims once the shard fills).
        let qs = same_shard_questions(8);
        let hot = &qs[0];
        for policy in CachePolicy::ALL {
            let cache = AnswerCache::with_policy(3 * SHARDS, policy);
            cache.insert(DbId::Fund, hot, fp(0), "hot answer");
            for _ in 0..4 {
                assert!(cache.get(DbId::Fund, hot, fp(0)).is_some());
            }
            // One-shot flood: each key looked up once (miss) and filled.
            for (i, q) in qs.iter().enumerate().skip(1) {
                assert!(cache.get(DbId::Fund, q, fp(0)).is_none());
                cache.insert(DbId::Fund, q, fp(0), format!("flood{i}"));
            }
            let resident = cache.get(DbId::Fund, hot, fp(0)).is_some();
            match policy {
                CachePolicy::Lru => {
                    assert!(!resident, "7 one-shot keys must flush a 3-entry LRU shard")
                }
                CachePolicy::SlruTinyLfu => {
                    assert!(resident, "admission filter must keep the hot key resident")
                }
            }
        }
    }

    #[test]
    fn policy_parse_round_trips() {
        for policy in CachePolicy::ALL {
            assert_eq!(CachePolicy::parse(policy.as_str()), Some(policy));
            assert_eq!(policy.to_string(), policy.as_str());
        }
        assert_eq!(CachePolicy::parse("slru"), Some(CachePolicy::SlruTinyLfu));
        assert_eq!(CachePolicy::parse("fifo"), None);
        assert_eq!(CachePolicy::default(), CachePolicy::SlruTinyLfu);
    }

    #[test]
    fn builder_slots_are_order_sensitive() {
        let a = FingerprintBuilder::new("t").push_u64(1).push_u64(2).finish();
        let b = FingerprintBuilder::new("t").push_u64(2).push_u64(1).finish();
        assert_ne!(a, b);
        let c = FingerprintBuilder::new("t").push_str("ab").push_str("c").finish();
        let d = FingerprintBuilder::new("t").push_str("a").push_str("bc").finish();
        assert_ne!(c, d, "length prefixing keeps the stream prefix-free");
    }

    struct Upper;
    impl Answerer for Upper {
        fn fingerprint(&self) -> ConfigFingerprint {
            FingerprintBuilder::new("upper").finish()
        }
        fn answer_fresh(&self, _db: DbId, q: &str, _m: Option<&EvalMetrics>) -> String {
            q.to_ascii_uppercase()
        }
    }

    #[test]
    fn answerer_default_path_fills_and_hits() {
        let cache = AnswerCache::unbounded();
        let m = EvalMetrics::new();
        let a = Upper.answer_cached(&cache, DbId::Fund, "select x", Some(&m));
        let b = Upper.answer_cached(&cache, DbId::Fund, "select x", Some(&m));
        assert_eq!(&*a, "SELECT X");
        assert_eq!(a, b);
        let snap = m.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_eq!(&*Upper.answer_maybe_cached(None, DbId::Fund, "y", None), "Y");
        assert_eq!(cache.len(), 1, "uncached path must not touch the cache");
    }
}
