//! The batched answer engine: micro-batched inference plus a request
//! scheduler.
//!
//! [`FinSql::answer_batch`] answers a slice of questions against one
//! database in a single pass that amortises the per-question setup the
//! serial path pays every time: the questions are embedded in one
//! [`simllm::EmbeddingModel::embed_batch`] sweep and ranked against the
//! runtime's contiguous [`simllm::PrototypeMatrix`], questions whose
//! schema linking selects the same top-k tables and columns share one
//! projected prompt schema (built once per distinct projection instead of
//! once per question), and linking runs as one matrix sweep over the
//! runtime's precomputed [`crossenc::SchemaFeatureMatrix`] — every
//! question featurised once, no per-question string work or thread scope.
//!
//! **Why batching cannot change an answer.** Every source of randomness
//! in the pipeline is derived from the question itself, never from batch
//! shape: the sampling RNG is [`FinSql::question_rng`] (seeded from
//! system seed, database and question bytes), and slot decisions come
//! from a per-question slot seed that is re-derived identically inside
//! [`simllm::SqlGenerator::generate_batch`]. Linking is a pure function
//! of `(question, schema views)` and serial/parallel modes agree exactly;
//! the shared projected schema is a pure function of the linker's top-k
//! selection, so sharing it is sharing an identical value; batch
//! embedding computes each row with the very code the single-question
//! path uses. Calibration is deterministic per candidate list. Therefore
//! `answer_batch(db, qs)[i] == answer(db, qs[i])` byte for byte, at every
//! batch size and in every grouping — which is what makes the
//! [`BatchScheduler`]'s coalescing safe and keeps cached answers exact.
//!
//! [`BatchScheduler`] is the serving front-end: a bounded MPMC queue and
//! a worker pool that coalesces concurrent requests into micro-batches —
//! from *any* database, up to a configurable size, holding an underfull
//! batch open for a short flush deadline — routes questions through the
//! answer cache first so only misses reach the engine, and implements
//! the [`Answerer`] trait. Mixed batches are split per database by
//! [`FinSql::answer_batch_mixed`], so a worker never stalls waiting for
//! same-database traffic to accumulate.

use crate::cache::{Answerer, AnswerCache, ConfigFingerprint, QuestionKey};
use crate::calibrate::calibrate_with_stats;
use crate::metrics::EvalMetrics;
use crate::pipeline::FinSql;
use bull::DbId;
use rand::rngs::StdRng;
use simllm::{BatchItem, GenConfig, GenCounters, SqlGenerator};
use sqlkit::catalog::CatalogSchema;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The linker's top-k selection for one question: the kept table indices
/// in rank order, each with its kept column indices in rank order. Two
/// questions with equal keys project to identical prompt schemas.
type ProjectionKey = Vec<(usize, Vec<usize>)>;

impl FinSql {
    /// Answers a batch of questions against one database. Each returned
    /// answer is byte-identical to what [`FinSql::answer`] produces for
    /// that question alone (see the module docs for why), but the batch
    /// shares one embedding sweep and one projected prompt schema per
    /// distinct linker selection.
    pub fn answer_batch(&self, db: DbId, questions: &[&str]) -> Vec<String> {
        self.answer_batch_with_metrics(db, questions, None)
    }

    /// [`FinSql::answer_batch`], feeding stage timings, counters and the
    /// batch-shape counters into a shared metrics sink.
    pub fn answer_batch_with_metrics(
        &self,
        db: DbId,
        questions: &[&str],
        metrics: Option<&EvalMetrics>,
    ) -> Vec<String> {
        if questions.is_empty() {
            return Vec::new();
        }
        let rt = self.runtime(db);
        // 1. Schema linking for the whole batch in one matrix sweep over
        // the runtime's precomputed schema feature matrix (bit-identical
        // to per-question linking in either mode — crossenc::matrix docs).
        // Questions whose top-k selection coincides share one projected
        // prompt schema.
        let (linked_all, link_time) = self.linker.link_batch_timed(questions, &rt.link_matrix);
        if let Some(m) = metrics {
            m.record_link(link_time);
        }
        let mut schema_of_key: HashMap<ProjectionKey, usize> = HashMap::new();
        let mut schemas: Vec<CatalogSchema> = Vec::new();
        let mut schema_idx: Vec<usize> = Vec::with_capacity(questions.len());
        for linked in &linked_all {
            let key: ProjectionKey = linked
                .tables
                .iter()
                .take(self.config.k_tables)
                .map(|(ti, _)| {
                    let cols = linked.columns[*ti]
                        .iter()
                        .take(self.config.k_columns)
                        .map(|(ci, _)| *ci)
                        .collect();
                    (*ti, cols)
                })
                .collect();
            let idx = *schema_of_key.entry(key).or_insert_with(|| {
                schemas
                    .push(linked.project(&rt.schema, self.config.k_tables, self.config.k_columns));
                schemas.len() - 1
            });
            schema_idx.push(idx);
        }
        // 2. One batched generation pass: a single embed-and-rank sweep,
        // then the exact per-question sampling loop under each question's
        // own deterministic RNG.
        let items: Vec<BatchItem<'_>> = questions
            .iter()
            .zip(&schema_idx)
            .map(|(q, &si)| BatchItem { question: q, prompt_schema: &schemas[si] })
            .collect();
        let mut rngs: Vec<StdRng> =
            questions.iter().map(|q| self.question_rng(db, q)).collect();
        let generator = SqlGenerator::with_matrix(&self.base, &rt.plugin, &rt.matrix, self.profile)
            .with_index(&rt.proto_index);
        let gen_start = Instant::now();
        let sampled = generator.generate_batch(
            &items,
            &rt.values,
            GenConfig {
                n_samples: self.config.n_candidates,
                temperature: self.config.temperature,
                skeleton_temperature: None,
            },
            &mut rngs,
        );
        let gen_time = gen_start.elapsed();
        if let Some(m) = metrics {
            let mut merged = GenCounters::default();
            for (_, c) in &sampled {
                merged.samples += c.samples;
                merged.fallbacks += c.fallbacks;
                merged.skeleton_slips += c.skeleton_slips;
            }
            m.record_generation(gen_time, &merged);
        }
        // 3. Calibration per question, exactly as the serial path.
        let out: Vec<String> = sampled
            .into_iter()
            .map(|(candidates, _)| {
                let calib_start = Instant::now();
                let (calibrated, stats) =
                    calibrate_with_stats(&candidates, &rt.schema, &self.config.calibration);
                if let Some(m) = metrics {
                    m.record_question();
                    m.record_calibration(calib_start.elapsed(), &stats, calibrated.is_none());
                }
                calibrated.unwrap_or_else(|| candidates.first().cloned().unwrap_or_default())
            })
            .collect();
        if let Some(m) = metrics {
            m.record_batch(questions.len());
        }
        out
    }

    /// Cache-first batched answering: questions already cached are served
    /// without touching the engine, the misses are answered in one
    /// [`FinSql::answer_batch_with_metrics`] call and fill the cache.
    ///
    /// Questions are any [`QuestionKey`]: the scheduler path passes the
    /// queue's `Arc<str>` requests so a cache fill shares the submitted
    /// allocation instead of copying the question bytes.
    pub fn answer_batch_cached<Q: QuestionKey>(
        &self,
        cache: &AnswerCache,
        db: DbId,
        questions: &[Q],
        metrics: Option<&EvalMetrics>,
    ) -> Vec<Arc<str>> {
        let fingerprint = self.config_fingerprint();
        let mut out: Vec<Option<Arc<str>>> = vec![None; questions.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, q) in questions.iter().enumerate() {
            match cache.get(db, q.as_str(), fingerprint) {
                Some(hit) => {
                    if let Some(m) = metrics {
                        m.record_cache_hit();
                    }
                    out[i] = Some(hit);
                }
                None => misses.push(i),
            }
        }
        if !misses.is_empty() {
            let miss_questions: Vec<&str> =
                misses.iter().map(|&i| questions[i].as_str()).collect();
            let computed = self.answer_batch_with_metrics(db, &miss_questions, metrics);
            for (&i, answer) in misses.iter().zip(computed) {
                let answer: Arc<str> = Arc::from(answer);
                let outcome = cache.insert(db, &questions[i], fingerprint, Arc::clone(&answer));
                if let Some(m) = metrics {
                    m.record_cache_miss(outcome.evicted);
                    if !outcome.admitted {
                        m.record_admission_rejected();
                    }
                }
                out[i] = Some(answer);
            }
        }
        // INVARIANT: every index is either a cache hit (filled in the
        // first loop) or in `misses` (filled from `computed`, which has
        // exactly one answer per miss).
        out.into_iter().map(|a| a.expect("every slot filled")).collect()
    }

    /// [`FinSql::answer_batch_cached`] with an optional cache — the shape
    /// the bench harness uses under its `--no-cache` flag.
    pub fn answer_batch_maybe_cached<Q: QuestionKey>(
        &self,
        cache: Option<&AnswerCache>,
        db: DbId,
        questions: &[Q],
        metrics: Option<&EvalMetrics>,
    ) -> Vec<Arc<str>> {
        match cache {
            Some(c) => self.answer_batch_cached(c, db, questions, metrics),
            None => {
                let borrowed: Vec<&str> = questions.iter().map(|q| q.as_str()).collect();
                self.answer_batch_with_metrics(db, &borrowed, metrics)
                    .into_iter()
                    .map(Arc::from)
                    .collect()
            }
        }
    }

    /// Answers a micro-batch that may span databases. The linker, the
    /// LoRA plugin, the prototype matrix and the value index are all
    /// per-database artifacts, so the batch is split into one per-db
    /// sub-batch per database present (in [`DbId::ALL`] order), each
    /// answered through the cache-first batched path, and the answers
    /// are scattered back into request order. Every answer is still
    /// byte-identical to a lone [`FinSql::answer`] call — sub-batching
    /// is just batching, and batching cannot change an answer — which is
    /// what lets the [`BatchScheduler`] coalesce mixed traffic without
    /// waiting for same-database requests to accumulate.
    pub fn answer_batch_mixed<Q: QuestionKey>(
        &self,
        cache: Option<&AnswerCache>,
        requests: &[(DbId, Q)],
        metrics: Option<&EvalMetrics>,
    ) -> Vec<Arc<str>> {
        let mut out: Vec<Option<Arc<str>>> = vec![None; requests.len()];
        let mut dbs_spanned = 0usize;
        for db in DbId::ALL {
            let indices: Vec<usize> = requests
                .iter()
                .enumerate()
                .filter(|(_, (d, _))| *d == db)
                .map(|(i, _)| i)
                .collect();
            if indices.is_empty() {
                continue;
            }
            dbs_spanned += 1;
            let questions: Vec<&Q> = indices.iter().map(|&i| &requests[i].1).collect();
            let answers = self.answer_batch_maybe_cached(cache, db, &questions, metrics);
            for (&i, answer) in indices.iter().zip(answers) {
                out[i] = Some(answer);
            }
        }
        if let Some(m) = metrics {
            if dbs_spanned > 1 {
                m.record_mixed_batch();
            }
        }
        // INVARIANT: DbId::ALL covers every possible request db, so each
        // index lands in exactly one per-db group and is filled there.
        out.into_iter().map(|a| a.expect("every database group answered")).collect()
    }
}

/// Knobs of the [`BatchScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most questions coalesced into one micro-batch.
    pub max_batch: usize,
    /// How long a worker holds an underfull batch open waiting for more
    /// requests before flushing it.
    pub flush: Duration,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; submissions block while the queue is full.
    pub queue_cap: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            flush: Duration::from_millis(2),
            workers: 2,
            queue_cap: 256,
        }
    }
}

/// One pending request's answer slot: filled by a worker, awaited by the
/// submitter.
#[derive(Default)]
struct ResponseSlot {
    answer: Mutex<Option<Arc<str>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn put(&self, answer: Arc<str>) {
        // INVARIANT: a poisoned slot lock means a peer thread panicked
        // holding it; the slot state is unrecoverable, so propagate.
        *self.answer.lock().expect("slot lock poisoned") = Some(answer);
        self.ready.notify_all();
    }

    fn wait(&self) -> Arc<str> {
        // INVARIANT: a poisoned slot lock means a peer thread panicked
        // holding it; the slot state is unrecoverable, so propagate.
        let mut guard = self.answer.lock().expect("slot lock poisoned");
        loop {
            if let Some(answer) = guard.take() {
                return answer;
            }
            // INVARIANT: poisoning, as above — propagate the peer panic.
            guard = self.ready.wait(guard).expect("slot lock poisoned");
        }
    }

    /// Takes the answer if a worker already delivered it; never blocks.
    fn try_take(&self) -> Option<Arc<str>> {
        // INVARIANT: a poisoned slot lock means a peer thread panicked
        // holding it; the slot state is unrecoverable, so propagate.
        self.answer.lock().expect("slot lock poisoned").take()
    }
}

/// Why a submission was refused. Both cases are backpressure, not
/// failure: no request was enqueued and no answer was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity. The caller decides the policy:
    /// the serving front-end sheds load with a `Busy` response, a batch
    /// caller may retry or fall back to the blocking
    /// [`BatchScheduler::submit`].
    QueueFull,
    /// The scheduler is shutting down and accepts no new work. Requests
    /// already queued are still drained and answered.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::QueueFull => "scheduler queue is full",
            SubmitError::ShuttingDown => "scheduler is shutting down",
        })
    }
}

impl std::error::Error for SubmitError {}

/// A claim on one submitted request's future answer.
///
/// Obtained from [`BatchScheduler::submit`]/[`BatchScheduler::try_submit`];
/// redeem it either by blocking ([`Ticket::wait`]) or by polling
/// ([`Ticket::try_answer`]) — the shape the non-blocking serving loop
/// needs, where a connection driver polls tickets between socket events
/// instead of parking a thread per request.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// The answer, if a worker has already delivered it. Returns
    /// `Some` exactly once; never blocks.
    pub fn try_answer(&self) -> Option<Arc<str>> {
        self.slot.try_take()
    }

    /// Blocks until the answer is ready. Always terminates: a submitted
    /// request is answered even during shutdown (the workers drain the
    /// queue before exiting).
    pub fn wait(self) -> Arc<str> {
        self.slot.wait()
    }
}

/// One queued question.
struct Request {
    db: DbId,
    question: Arc<str>,
    slot: Arc<ResponseSlot>,
    /// When the request entered the queue. The flush deadline of the
    /// batch this request opens is anchored here, not at worker pop —
    /// otherwise time spent waiting in the queue silently extends the
    /// flush window.
    enqueued: Instant,
}

/// The bounded MPMC queue the scheduler's workers drain.
#[derive(Default)]
struct QueueState {
    items: VecDeque<Request>,
    shutdown: bool,
}

#[derive(Default)]
struct Queue {
    state: Mutex<QueueState>,
    /// Signalled on push and on shutdown.
    not_empty: Condvar,
    /// Signalled on pop.
    not_full: Condvar,
}

/// Everything a worker thread needs, shared behind one `Arc`.
struct Shared {
    engine: Arc<FinSql>,
    cache: Option<Arc<AnswerCache>>,
    metrics: Option<Arc<EvalMetrics>>,
    config: BatchConfig,
    queue: Queue,
}

/// A micro-batching request scheduler in front of a [`FinSql`] engine.
///
/// Requests from any thread are pushed onto one bounded queue; workers
/// pop a request, then coalesce further requests — from *any* database —
/// into a micro-batch, up to [`BatchConfig::max_batch`], holding an
/// underfull batch open for at most [`BatchConfig::flush`], and answer
/// the whole batch through [`FinSql::answer_batch_mixed`], which splits
/// it per database inside the engine. Because batching cannot change an
/// answer (module docs), coalescing is invisible to callers: every
/// request gets exactly the answer a lone [`FinSql::answer`] call would
/// have produced.
///
/// Dropping the scheduler shuts the pool down after draining every
/// request already queued.
pub struct BatchScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl BatchScheduler {
    /// Starts a scheduler over an engine, an optional answer cache for
    /// cache-first routing, and an optional metrics sink the workers
    /// record into (per-call sinks cannot cross the queue, so the sink is
    /// fixed at construction).
    pub fn new(
        engine: Arc<FinSql>,
        cache: Option<Arc<AnswerCache>>,
        metrics: Option<Arc<EvalMetrics>>,
        config: BatchConfig,
    ) -> Self {
        let config = BatchConfig {
            max_batch: config.max_batch.max(1),
            workers: config.workers.max(1),
            queue_cap: config.queue_cap.max(1),
            ..config
        };
        let shared = Arc::new(Shared { engine, cache, metrics, config, queue: Queue::default() });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        BatchScheduler { shared, workers }
    }

    /// Submits one question without blocking: the request is either
    /// enqueued (returning a [`Ticket`]) or refused immediately —
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`BatchScheduler::shutdown`]
    /// began. This is how the bounded queue exerts backpressure to the
    /// wire: the serving front-end calls this from its event loop and
    /// turns `QueueFull` into a `Busy` response instead of parking a
    /// driver thread.
    ///
    /// Pass an `Arc<str>` question to intern it end to end: the queue,
    /// the cache key and the response all share that one allocation.
    pub fn try_submit(
        &self,
        db: DbId,
        question: impl Into<Arc<str>>,
    ) -> Result<Ticket, SubmitError> {
        let slot = Arc::new(ResponseSlot::default());
        {
            // INVARIANT: a poisoned queue lock means a worker panicked
            // holding it; the queue state is unrecoverable, so propagate.
            let mut state = self.shared.queue.state.lock().expect("queue lock poisoned");
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.items.len() >= self.shared.config.queue_cap {
                return Err(SubmitError::QueueFull);
            }
            state.items.push_back(Request {
                db,
                question: question.into(),
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
            });
        }
        self.shared.queue.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits one question, blocking while the queue is full. Fails only
    /// with [`SubmitError::ShuttingDown`] once shutdown has begun (a
    /// full queue blocks; it never errors here).
    pub fn submit(
        &self,
        db: DbId,
        question: impl Into<Arc<str>>,
    ) -> Result<Ticket, SubmitError> {
        let slot = Arc::new(ResponseSlot::default());
        {
            // INVARIANT: a poisoned queue lock means a worker panicked
            // holding it; the queue state is unrecoverable, so propagate.
            let mut state = self.shared.queue.state.lock().expect("queue lock poisoned");
            loop {
                if state.shutdown {
                    return Err(SubmitError::ShuttingDown);
                }
                if state.items.len() < self.shared.config.queue_cap {
                    break;
                }
                // INVARIANT: poisoning, as above — propagate the panic.
                state = self.shared.queue.not_full.wait(state).expect("queue lock poisoned");
            }
            state.items.push_back(Request {
                db,
                question: question.into(),
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
            });
        }
        self.shared.queue.not_empty.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits one question and blocks until its answer is ready. Safe to
    /// call from many threads at once — concurrency is what gives the
    /// workers batches to coalesce.
    pub fn answer(&self, db: DbId, question: &str) -> Arc<str> {
        // INVARIANT: library-path callers join their submitter threads
        // before the scheduler shuts down, so `submit` cannot observe
        // `ShuttingDown` here; a non-blocking front-end must use
        // `try_submit` and handle the error instead.
        self.submit(db, question).expect("submit raced scheduler shutdown").wait()
    }

    /// Begins shutdown and joins the worker pool: no new submissions are
    /// accepted (submitters get [`SubmitError::ShuttingDown`]), every
    /// request already queued is drained and answered, and the method
    /// returns once all workers have exited. Idempotent — `Drop`
    /// delegates here.
    pub fn shutdown(&mut self) {
        {
            // INVARIANT: a poisoned queue lock means a worker panicked
            // holding it; the queue state is unrecoverable, so propagate.
            let mut state = self.shared.queue.state.lock().expect("queue lock poisoned");
            state.shutdown = true;
        }
        // Wake both sides: workers parked on not_empty must re-check the
        // flag and drain; submitters parked on not_full must bail out.
        self.shared.queue.not_empty.notify_all();
        self.shared.queue.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Answerer for BatchScheduler {
    fn fingerprint(&self) -> ConfigFingerprint {
        self.shared.engine.config_fingerprint()
    }

    /// Submits through the queue. The scheduler already routes through
    /// its own cache (when given one) before computing, and records into
    /// its construction-time metrics sink; the per-call `metrics`
    /// argument cannot cross the queue and is ignored.
    fn answer_fresh(&self, db: DbId, question: &str, _metrics: Option<&EvalMetrics>) -> String {
        self.answer(db, question).as_ref().to_owned()
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop a request, coalesce followers from any database up to
/// the batch cap or the flush deadline, answer the mixed batch, fill the
/// slots. On shutdown the queue is drained completely before the worker
/// exits, so no submitted request is ever dropped.
fn worker_loop(shared: &Shared) {
    loop {
        let first = {
            // INVARIANT: a poisoned queue lock means a sibling panicked
            // holding it; the queue state is unrecoverable, so propagate.
            let mut state = shared.queue.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(request) = state.items.pop_front() {
                    shared.queue.not_full.notify_all();
                    break request;
                }
                if state.shutdown {
                    return;
                }
                // INVARIANT: poisoning, as above — propagate the panic.
                state = shared.queue.not_empty.wait(state).expect("queue lock poisoned");
            }
        };
        // The flush window is anchored to when the batch's first request
        // was *enqueued*, not to when this worker got around to popping
        // it: a request that already waited its window in the queue is
        // flushed immediately instead of waiting a second full window,
        // and every request is answered at most `flush` after arrival
        // (plus compute) regardless of worker scheduling.
        let deadline = first.enqueued + shared.config.flush;
        let mut batch = vec![first];
        {
            // INVARIANT: a poisoned queue lock means a sibling panicked
            // holding it; the queue state is unrecoverable, so propagate.
            let mut state = shared.queue.state.lock().expect("queue lock poisoned");
            while batch.len() < shared.config.max_batch {
                if let Some(request) = state.items.pop_front() {
                    batch.push(request);
                    shared.queue.not_full.notify_all();
                    continue;
                }
                if state.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = shared
                    .queue
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    // INVARIANT: poisoning, as above — propagate the panic.
                    .expect("queue lock poisoned");
                state = guard;
            }
        }
        // Clone the interned question Arcs (refcount bumps): passing the
        // `Arc<str>` keys through the cache-first path lets a cache fill
        // share the submitted allocation instead of copying the bytes.
        let requests: Vec<(DbId, Arc<str>)> =
            batch.iter().map(|r| (r.db, Arc::clone(&r.question))).collect();
        let metrics = shared.metrics.as_deref();
        let answers =
            shared.engine.answer_batch_mixed(shared.cache.as_deref(), &requests, metrics);
        for (request, answer) in batch.iter().zip(answers) {
            if let Some(m) = metrics {
                // Scheduler-path latency: queue wait + batching window +
                // compute, anchored at enqueue time.
                m.record_answer_latency(request.enqueued.elapsed());
            }
            request.slot.put(answer);
        }
    }
}
