//! The end-to-end FinSQL system (paper Figure 1, inference path):
//! schema linking → concise prompt → LLM sampling → output calibration.

use crate::cache::{Answerer, ConfigFingerprint, FingerprintBuilder};
use crate::calibrate::{calibrate_with_stats, CalibrationConfig};
use crate::metrics::EvalMetrics;
use crate::peft::train_database_plugin;
use augment::AugmentationFlags;
use bull::{BullDataset, DbId, Lang, Split};
use crossenc::{CrossEncoder, InferenceMode, LinkExample, SchemaFeatureMatrix, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simllm::{
    BaseModelProfile, EmbeddingModel, GenConfig, LoraPlugin, PluginHub, PrototypeIndex,
    PrototypeMatrix, SqlGenerator, TrainOpts, ValueIndex,
};
use sqlengine::{DataEpoch, Database};
use sqlkit::catalog::CatalogSchema;
use std::sync::Arc;

/// Build-time configuration for a [`FinSql`] system.
#[derive(Debug, Clone, Copy)]
pub struct FinSqlConfig {
    pub lang: Lang,
    /// Augmentation flags for plugin training (Table 8 knobs).
    pub augmentation: AugmentationFlags,
    /// Calibration steps at inference (Table 9 knobs).
    pub calibration: CalibrationConfig,
    /// Tables kept by schema linking.
    pub k_tables: usize,
    /// Columns kept per table.
    pub k_columns: usize,
    /// Candidates sampled for self-consistency.
    pub n_candidates: usize,
    /// Sampling temperature.
    pub temperature: f64,
    pub seed: u64,
    /// How the per-question path runs Cross-Encoder inference over the
    /// schema's tables. Serial and parallel rankings are identical (and
    /// the batched path's matrix sweep matches both bit for bit), so
    /// this knob trades thread fan-out against per-question latency
    /// without ever affecting an answer — which is why it is *not* part
    /// of the config fingerprint.
    pub link_mode: InferenceMode,
    /// The eviction/admission policy of any [`crate::cache::AnswerCache`]
    /// built for this system. Like `link_mode`, deliberately *not*
    /// fingerprinted: a policy decides which deterministic answers stay
    /// resident (hit vs recompute), never what an answer is, so toggling
    /// it must keep every cache entry valid (`fingerprint_prop` pins
    /// this down).
    pub cache_policy: crate::cache::CachePolicy,
}

impl FinSqlConfig {
    /// The defaults used for the headline Tables 4/5 rows.
    pub fn standard(lang: Lang) -> Self {
        FinSqlConfig {
            lang,
            augmentation: AugmentationFlags::default(),
            calibration: CalibrationConfig::default(),
            k_tables: 4,
            k_columns: 8,
            n_candidates: 5,
            temperature: 0.7,
            seed: 0xF1A5,
            link_mode: InferenceMode::Parallel,
            cache_policy: crate::cache::CachePolicy::SlruTinyLfu,
        }
    }
}

/// Per-database inference artifacts.
pub struct DbRuntime {
    pub db: DbId,
    pub schema: CatalogSchema,
    pub views: crossenc::model::SchemaViews,
    pub values: ValueIndex,
    pub plugin: Arc<LoraPlugin>,
    /// The plugin's prototype centroids flattened into one contiguous
    /// scoring matrix, built once here so every generator borrows it
    /// instead of re-reading scattered centroid vectors per question.
    pub matrix: PrototypeMatrix,
    /// The linker's precomputed schema feature matrix — every table and
    /// column's pair-feature buckets hashed once here, so a micro-batch
    /// links all its questions in one [`CrossEncoder::link_batch`]
    /// sweep instead of re-hashing the schema per question.
    pub link_matrix: SchemaFeatureMatrix,
    /// Inverted n-gram index over the plugin's prototypes (skeletons +
    /// the train questions each prototype was distilled from): prunes
    /// the retrieval sweep to a certified candidate set without ever
    /// changing a ranking (see [`simllm::index`]).
    pub proto_index: PrototypeIndex,
    /// The data epoch of the database this runtime's data-derived
    /// artifacts were built from (see [`sqlengine::DataEpoch`]). Mixed
    /// into the config fingerprint, so every cache key is stamped with
    /// the data state it was computed against — a live append bumps the
    /// database's epoch, [`FinSql::absorb_appends`] advances this field,
    /// and every pre-append cache entry becomes structurally
    /// unreachable. Of the runtime's derived artifacts only `values`
    /// depends on row data; `schema`/`views`/`link_matrix` are pure
    /// functions of the (immutable) catalog and `matrix`/`proto_index`
    /// of the plugin, so absorbing an append refreshes `values` and
    /// this epoch and nothing else.
    pub epoch: DataEpoch,
}

impl DbRuntime {
    fn new(
        ds: &BullDataset,
        db: DbId,
        lang: Lang,
        linker: &CrossEncoder,
        plugin: Arc<LoraPlugin>,
    ) -> Self {
        let matrix = PrototypeMatrix::build(&plugin.prototypes);
        let proto_index = PrototypeIndex::build(&index_docs(ds, db, lang, &plugin));
        let views = crossenc::model::SchemaViews::build(ds.db(db).catalog(), lang);
        let link_matrix = linker.schema_matrix(&views);
        DbRuntime {
            db,
            schema: ds.db(db).catalog().clone(),
            views,
            values: ValueIndex::build(ds.db(db)),
            plugin,
            matrix,
            link_matrix,
            proto_index,
            epoch: ds.db(db).epoch(),
        }
    }
}

/// One retrieval document per prototype: its skeleton plus the
/// train-split questions whose gold SQL reduces to that skeleton — the
/// same texts the prototype's centroid was averaged from.
fn index_docs(ds: &BullDataset, db: DbId, lang: Lang, plugin: &LoraPlugin) -> Vec<Vec<String>> {
    let mut docs: Vec<Vec<String>> =
        plugin.prototypes.iter().map(|p| vec![p.skeleton.clone()]).collect();
    for e in ds.examples_for(db, Split::Train) {
        let Some(skeleton) = sqlkit::skeleton_of(&e.sql) else { continue };
        // Prototypes are sorted by skeleton, so membership is a binary
        // search rather than a scan.
        if let Ok(j) =
            plugin.prototypes.binary_search_by(|p| p.skeleton.as_str().cmp(skeleton.as_str()))
        {
            docs[j].push(e.question(lang).to_string());
        }
    }
    docs
}

/// A fully-built FinSQL system for one register, covering all three
/// databases.
pub struct FinSql {
    pub config: FinSqlConfig,
    pub profile: &'static BaseModelProfile,
    pub base: EmbeddingModel,
    pub linker: CrossEncoder,
    pub hub: PluginHub,
    /// One runtime per database, stored dense at [`DbId::index`] so the
    /// hot-path lookup is a bounds-free array index, not a scan.
    runtimes: [DbRuntime; 3],
}

/// Collects exactly one runtime per database, in [`DbId::ALL`] order,
/// into the dense array [`FinSql::runtime`] indexes into.
fn into_runtime_array(runtimes: Vec<DbRuntime>) -> [DbRuntime; 3] {
    debug_assert!(runtimes.iter().zip(DbId::ALL).all(|(r, db)| r.db == db));
    match runtimes.try_into() {
        Ok(arr) => arr,
        // INVARIANT: callers build `runtimes` by mapping over DbId::ALL
        // (length 3, checked by the debug_assert above).
        Err(_) => unreachable!("one runtime is built per database"),
    }
}

impl FinSql {
    /// Trains the full system on the dataset's training splits: the
    /// Cross-Encoder linker jointly over the three databases, and one
    /// LoRA plugin per database on the augmented mix.
    ///
    /// The linker and the three plugins are independent training jobs
    /// with their own seeds, so they run concurrently on scoped worker
    /// threads; the result is identical to [`FinSql::build_serial`].
    pub fn build(
        ds: &BullDataset,
        profile: &'static BaseModelProfile,
        config: FinSqlConfig,
    ) -> Self {
        let base = EmbeddingModel::pretrained(config.seed);
        let hub = PluginHub::new();
        let (linker, plugins) = crossbeam::scope(|scope| {
            let linker_job =
                scope.spawn(|_| train_linker(ds, config.lang, &DbId::ALL, config.seed));
            let plugin_jobs: Vec<_> = DbId::ALL
                .into_iter()
                .map(|db| {
                    let (base, hub) = (&base, &hub);
                    scope.spawn(move |_| {
                        train_database_plugin(
                            base,
                            hub,
                            ds,
                            db,
                            config.lang,
                            config.augmentation,
                            TrainOpts { seed: config.seed ^ db as u64, ..Default::default() },
                        )
                    })
                })
                .collect();
            let plugins: Vec<Arc<LoraPlugin>> = plugin_jobs
                .into_iter()
                // INVARIANT: a panic in a training job invalidates the
                // whole build; join re-raises it on this thread.
                .map(|j| j.join().expect("plugin training panicked"))
                .collect();
            // INVARIANT: as above — re-raise a linker-training panic.
            (linker_job.join().expect("linker training panicked"), plugins)
        })
        // INVARIANT: scope() only errs when a job panicked, which the
        // joins above already re-raise; this expect cannot fire first.
        .expect("training thread panicked");
        let runtimes = DbId::ALL
            .into_iter()
            .zip(plugins)
            .map(|(db, plugin)| DbRuntime::new(ds, db, config.lang, &linker, plugin))
            .collect();
        FinSql { config, profile, base, linker, hub, runtimes: into_runtime_array(runtimes) }
    }

    /// [`FinSql::build`] without the training-job concurrency — the
    /// reference path the parallel build is checked against.
    pub fn build_serial(
        ds: &BullDataset,
        profile: &'static BaseModelProfile,
        config: FinSqlConfig,
    ) -> Self {
        let base = EmbeddingModel::pretrained(config.seed);
        let linker = train_linker(ds, config.lang, &DbId::ALL, config.seed);
        let hub = PluginHub::new();
        let mut runtimes = Vec::new();
        for db in DbId::ALL {
            let plugin = train_database_plugin(
                &base,
                &hub,
                ds,
                db,
                config.lang,
                config.augmentation,
                TrainOpts { seed: config.seed ^ db as u64, ..Default::default() },
            );
            runtimes.push(DbRuntime::new(ds, db, config.lang, &linker, plugin));
        }
        FinSql { config, profile, base, linker, hub, runtimes: into_runtime_array(runtimes) }
    }

    /// The runtime artifacts of one database: an O(1) indexed lookup
    /// (runtimes are stored dense at [`DbId::index`], so no scan and no
    /// failure path).
    pub fn runtime(&self, db: DbId) -> &DbRuntime {
        &self.runtimes[db.index()]
    }

    /// Replaces a database's plugin (used by the few-shot experiments)
    /// and rebuilds its prototype scoring matrix and retrieval index to
    /// match. The swapped-in index is skeleton-only (the training
    /// questions behind an arbitrary plugin are not available here) —
    /// weaker pruning recall, identical answers.
    pub fn set_plugin(&mut self, db: DbId, plugin: Arc<LoraPlugin>) {
        let r = &mut self.runtimes[db.index()];
        r.matrix = PrototypeMatrix::build(&plugin.prototypes);
        r.proto_index = PrototypeIndex::from_prototypes(&plugin.prototypes);
        r.plugin = plugin;
    }

    /// Catches one runtime up with its database after live appends, by
    /// absorbing the change-log tail this runtime has not yet seen:
    /// every unseen [`sqlengine::ChangeRecord`]'s rows are unioned into
    /// the [`ValueIndex`] (incremental refresh, structurally identical
    /// to a from-scratch rebuild — [`FinSql::rebuild_data`] is the
    /// reference), and the runtime's epoch advances to the database's.
    /// The epoch move shifts [`FinSql::config_fingerprint`], so every
    /// cache entry minted before the append is unreachable afterwards.
    ///
    /// Returns `true` when anything was absorbed. Panics are impossible
    /// on records produced by `Database::apply_changes` (table names are
    /// canonical); an unknown table in a foreign log is skipped.
    pub fn absorb_appends(&mut self, db: DbId, database: &Database) -> bool {
        let rt = &mut self.runtimes[db.index()];
        let tail = database.change_log().since(rt.epoch.0);
        if tail.is_empty() && rt.epoch == database.epoch() {
            return false;
        }
        let schema = &rt.schema;
        rt.values.absorb_batch(tail.iter().filter_map(|record| {
            schema.table(&record.table).map(|def| (def, record.rows.as_slice()))
        }));
        rt.epoch = database.epoch();
        true
    }

    /// The from-scratch counterpart of [`FinSql::absorb_appends`]:
    /// rebuilds the runtime's data-derived artifacts wholesale from the
    /// database's current rows and adopts its epoch. Used as the
    /// reference in the differential live-equality suite, and as the
    /// catch-up path when a consumer's runtime is behind by an entire
    /// snapshot rather than a log tail.
    pub fn rebuild_data(&mut self, db: DbId, database: &Database) {
        let rt = &mut self.runtimes[db.index()];
        rt.values = ValueIndex::build(database);
        rt.epoch = database.epoch();
    }

    /// Answers a question against one database: the paper's full
    /// inference path.
    pub fn answer(&self, db: DbId, question: &str, rng: &mut StdRng) -> String {
        self.answer_with_metrics(db, question, rng, None)
    }

    /// [`FinSql::answer`], feeding per-stage timings and counters into a
    /// shared metrics sink. The produced SQL is byte-identical to
    /// `answer`'s; passing `None` skips all instrumentation.
    pub fn answer_with_metrics(
        &self,
        db: DbId,
        question: &str,
        rng: &mut StdRng,
        metrics: Option<&EvalMetrics>,
    ) -> String {
        let total_start = std::time::Instant::now();
        let rt = self.runtime(db);
        // 1. Schema linking (mode from config) → concise prompt schema.
        let (linked, link_time) =
            self.linker.link_timed(question, &rt.views, self.config.link_mode);
        let prompt_schema = linked.project(&rt.schema, self.config.k_tables, self.config.k_columns);
        // 2. Sample n candidates from the adapted model, scoring against
        // the runtime's prebuilt prototype matrix.
        let generator =
            SqlGenerator::with_matrix(&self.base, &rt.plugin, &rt.matrix, self.profile)
                .with_index(&rt.proto_index);
        let gen_start = std::time::Instant::now();
        let (candidates, counters) = generator.generate_with_counters(
            question,
            &prompt_schema,
            &rt.values,
            GenConfig {
                n_samples: self.config.n_candidates,
                temperature: self.config.temperature,
                skeleton_temperature: None,
            },
            rng,
        );
        let gen_time = gen_start.elapsed();
        // 3. Output calibration against the full schema.
        let calib_start = std::time::Instant::now();
        let (calibrated, stats) =
            calibrate_with_stats(&candidates, &rt.schema, &self.config.calibration);
        let calib_time = calib_start.elapsed();
        let fell_back = calibrated.is_none();
        let answer =
            calibrated.unwrap_or_else(|| candidates.first().cloned().unwrap_or_default());
        if let Some(m) = metrics {
            m.record_question();
            m.record_link(link_time);
            m.record_generation(gen_time, &counters);
            m.record_calibration(calib_time, &stats, fell_back);
            m.record_answer_latency(total_start.elapsed());
        }
        answer
    }

    /// A deterministic per-question RNG (seeded from the system seed, the
    /// database, and the question), so evaluation order does not matter
    /// and the same phrasing hitting two databases draws independently.
    pub fn question_rng(&self, db: DbId, question: &str) -> StdRng {
        question_rng(self.config.seed, db, question)
    }

    /// Links one database's dev examples in a single matrix sweep and
    /// records, for each example with gold linking labels, whether every
    /// gold table (and every gold column within its own table) survived
    /// into the top-k projection the prompt would see — the linking
    /// recall@k the evaluation report prints. Only recall counters are
    /// recorded; link timers are left untouched so an instrumentation
    /// pass cannot distort the stage breakdown of the run it reports on.
    pub fn record_link_recall(
        &self,
        db: DbId,
        examples: &[&bull::BullExample],
        metrics: &EvalMetrics,
    ) {
        let rt = self.runtime(db);
        let questions: Vec<&str> =
            examples.iter().map(|e| e.question(self.config.lang)).collect();
        let linked_all = self.linker.link_batch(&questions, &rt.link_matrix);
        for (e, linked) in examples.iter().zip(&linked_all) {
            if e.gold_tables.is_empty() && e.gold_columns.is_empty() {
                continue;
            }
            let tables_ok = linked.covers_tables(&rt.schema, &e.gold_tables, self.config.k_tables);
            let columns_ok =
                linked.covers_columns(&rt.schema, &e.gold_columns, self.config.k_columns);
            metrics.record_link_recall(tables_ok, columns_ok);
        }
    }

    /// Hashes every configuration knob that can change an answer into one
    /// [`ConfigFingerprint`]: the full [`FinSqlConfig`], the base-model
    /// profile, and per database the identity of the loaded plugin plus
    /// the data epoch the runtime serves at. Two systems with equal
    /// fingerprints answer identically, so the fingerprint keys the
    /// [`crate::cache::AnswerCache`] — and because the epoch is in the
    /// key, a cache entry can never outlive the data state it was
    /// computed against: bumping any database's epoch moves every key.
    /// An [`crate::cache::AnswerCache`] holding at most `capacity`
    /// entries (0 = unbounded) under this system's configured
    /// [`crate::cache::CachePolicy`] — the constructor the harnesses use
    /// so `FinSqlConfig::cache_policy` actually drives serving.
    pub fn new_cache(&self, capacity: usize) -> crate::cache::AnswerCache {
        crate::cache::AnswerCache::with_policy(capacity, self.config.cache_policy)
    }

    pub fn config_fingerprint(&self) -> ConfigFingerprint {
        let mut b = fingerprint_config(FingerprintBuilder::new("finsql"), &self.config);
        b = fingerprint_profile(b, self.profile);
        for rt in &self.runtimes {
            b = fingerprint_runtime(
                b,
                rt.db,
                &rt.plugin.name,
                rt.plugin.n_examples,
                rt.plugin.prototypes.len(),
                rt.plugin.cot_trained,
                rt.epoch,
            );
        }
        b.finish()
    }
}

/// Folds one database runtime's answer-affecting identity into a
/// fingerprint chain: which database, which plugin (by name, training
/// size, prototype count and CoT flag), and the [`DataEpoch`] its data
/// artifacts were built at. Split out of [`FinSql::config_fingerprint`]
/// so the epoch axis is property-testable without a trained system —
/// `crates/core/tests/fingerprint_prop.rs` proves a bump of any
/// runtime's epoch always moves the final fingerprint.
#[allow(clippy::too_many_arguments)]
pub fn fingerprint_runtime(
    b: FingerprintBuilder,
    db: DbId,
    plugin_name: &str,
    n_examples: usize,
    n_prototypes: usize,
    cot_trained: bool,
    epoch: DataEpoch,
) -> FingerprintBuilder {
    b.push_str(db.as_str())
        .push_str(plugin_name)
        .push_usize(n_examples)
        .push_usize(n_prototypes)
        .push_bool(cot_trained)
        .push_u64(epoch.0)
}

impl Answerer for FinSql {
    fn fingerprint(&self) -> ConfigFingerprint {
        self.config_fingerprint()
    }

    fn answer_fresh(&self, db: DbId, question: &str, metrics: Option<&EvalMetrics>) -> String {
        let mut rng = self.question_rng(db, question);
        self.answer_with_metrics(db, question, &mut rng, metrics)
    }
}

/// The deterministic per-question seed stream every answering system
/// shares: FNV over the question bytes on top of the system seed mixed
/// with the database id, exactly [`FinSql::question_rng`]'s derivation.
pub fn question_rng(seed: u64, db: DbId, question: &str) -> StdRng {
    let mut h = seed ^ (db as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in question.as_bytes() {
        h = h.wrapping_mul(0x100000001B3).wrapping_add(u64::from(*b));
    }
    StdRng::seed_from_u64(h)
}

/// Pushes every [`FinSqlConfig`] knob into a fingerprint, each in its own
/// fixed-width slot so any single mutation changes the result.
///
/// [`FinSqlConfig::link_mode`] is deliberately absent: serial, parallel
/// and matrix-batched linking produce bit-identical rankings, so the
/// mode cannot affect an answer and toggling it must keep cache entries
/// valid (`fingerprint_prop` pins this down).
/// [`FinSqlConfig::cache_policy`] is absent for the same reason: an
/// eviction/admission policy decides hit-vs-recompute for answers that
/// are deterministic per key, so it can never change what is served —
/// splitting keys on it would only discard warm entries for nothing.
pub fn fingerprint_config(b: FingerprintBuilder, config: &FinSqlConfig) -> FingerprintBuilder {
    b.push_str(config.lang.suffix())
        .push_bool(config.augmentation.cot)
        .push_bool(config.augmentation.synonyms)
        .push_bool(config.augmentation.skeleton)
        .push_usize(config.augmentation.synonyms_per_question)
        .push_u64(config.augmentation.seed)
        .push_bool(config.calibration.repair)
        .push_bool(config.calibration.self_consistency)
        .push_bool(config.calibration.alignment)
        .push_usize(config.k_tables)
        .push_usize(config.k_columns)
        .push_usize(config.n_candidates)
        .push_f64(config.temperature)
        .push_u64(config.seed)
}

/// Pushes a base-model profile's behavioural knobs into a fingerprint.
pub fn fingerprint_profile(
    b: FingerprintBuilder,
    profile: &BaseModelProfile,
) -> FingerprintBuilder {
    b.push_str(profile.name)
        .push_f64(profile.slot_skill)
        .push_f64(profile.join_skill)
        .push_f64(profile.skel_slip)
        .push_f64(profile.noise.typo)
        .push_f64(profile.noise.double_eq)
        .push_f64(profile.noise.drop_on)
        .push_f64(profile.noise.misalign)
        .push_f64(profile.noise.value)
}

/// Trains the Cross-Encoder on the training splits of the given
/// databases (jointly, as the paper does for the few-shot study).
pub fn train_linker(ds: &BullDataset, lang: Lang, dbs: &[DbId], seed: u64) -> CrossEncoder {
    let schemas: Vec<&CatalogSchema> = dbs.iter().map(|&db| ds.db(db).catalog()).collect();
    let mut examples = Vec::new();
    for (si, &db) in dbs.iter().enumerate() {
        for e in ds.examples_for(db, Split::Train) {
            examples.push(LinkExample {
                question: e.question(lang).to_string(),
                gold_tables: e.gold_tables.clone(),
                gold_columns: e.gold_columns.clone(),
                schema_idx: si,
            });
        }
    }
    crossenc::train::train(lang, &schemas, &examples, TrainConfig { seed, ..Default::default() })
}

/// Convenience: the training pairs + linker examples used by baselines.
pub fn dev_pairs(ds: &BullDataset, db: DbId, lang: Lang) -> Vec<(String, String)> {
    ds.examples_for(db, Split::Dev)
        .into_iter()
        .map(|e| (e.question(lang).to_string(), e.sql.clone()))
        .collect()
}
