//! FinSQL: the model-agnostic LLM-based Text-to-SQL framework.
//!
//! This crate assembles the paper's three components over the substrate
//! crates:
//!
//! - **Prompt construction** ([`prompt`]): parallel Cross-Encoder schema
//!   linking producing a concise prompt schema, plus prompt text
//!   rendering for cost accounting;
//! - **Parameter-efficient fine-tuning** ([`peft`]): LoRA plugin training
//!   on the hybrid augmented data, the plugin hub, and weights-merging
//!   based few-shot transfer;
//! - **Output calibration** ([`calibrate`]): Algorithm 1 — typo repair
//!   (`f1`), keyword-component extraction (`f2`), non-execution
//!   self-consistency clustering, and table–column alignment (`f3`).
//!
//! [`pipeline`] wires them into the runnable [`pipeline::FinSql`]
//! system; [`eval`] measures execution accuracy; [`baselines`] implements
//! the six comparison systems of the paper's Tables 4–5; [`cache`] is the
//! serving layer — a config-fingerprinted answer cache shared by the
//! system and the baselines through the [`cache::Answerer`] trait;
//! [`batch`] is the batched answer engine (micro-batched inference that
//! is byte-identical to the per-question path) plus the coalescing
//! [`batch::BatchScheduler`] front-end.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod batch;
pub mod cache;
pub mod calibrate;
pub mod eval;
pub mod live;
pub mod metrics;
pub mod peft;
pub mod pipeline;
pub mod prompt;
pub mod tinylfu;

pub use batch::{BatchConfig, BatchScheduler};
pub use cache::{
    Answerer, AnswerCache, CachePolicy, CacheStats, ConfigFingerprint, FingerprintBuilder,
    InsertOutcome,
};
pub use calibrate::{calibrate, calibrate_with_stats, CalibrationConfig, CalibrationStats};
pub use eval::{evaluate_ex, evaluate_ex_parallel, EvalOutcome, MultiDbOutcome};
pub use live::{evaluate_ex_live, LiveConfig, LiveOutcome, RoundReport};
pub use metrics::{EvalMetrics, HistogramSnapshot, LatencyHistogram, MetricsSnapshot};
pub use pipeline::{FinSql, FinSqlConfig};
pub use prompt::{render_prompt, render_schema};
