//! TinyLFU admission support: a 4-bit count-min frequency sketch.
//!
//! The [`FrequencySketch`] estimates how often a key hash has been
//! looked up recently. [`AnswerCache`](crate::cache::AnswerCache) keeps
//! one per shard under [`CachePolicy::SlruTinyLfu`](crate::cache::CachePolicy)
//! and consults it at capacity: a newly inserted candidate may displace
//! the eviction victim only when its estimated frequency is *strictly*
//! greater than the victim's. One-shot keys (a long tail of questions
//! asked exactly once) therefore bounce off a full shard instead of
//! flushing the hot set — the classic TinyLFU scan/flood resistance.
//!
//! Determinism: the sketch is pure integer arithmetic over the key hash
//! — four fixed odd-constant row seeds, no `HashMap` iteration, no
//! process-level randomness — so admission decisions replay identically
//! across rebuilds of the same request sequence. Frequencies *age* by
//! periodic halving: every counter is divided by two once the sample
//! counter saturates (the "reset" of the TinyLFU paper), which keeps
//! estimates fresh under drifting workloads. Halving preserves relative
//! order in the non-strict sense: `a >= b` implies `a/2 >= b/2` because
//! flooring division by two is monotone.

/// Counters are 4 bits wide, packed 16 per `u64` word, saturating at 15.
const COUNTER_MAX: u64 = 15;
/// Mask clearing the top bit of every nibble — halving shifts each word
/// right by one, and this mask stops bits leaking between nibbles.
const HALVE_MASK: u64 = 0x7777_7777_7777_7777;

/// Fixed per-row seeds (SplitMix64 outputs of 1..=4): each of the four
/// count-min rows hashes the key under a different seed so a collision
/// in one row is independent of the others.
const ROW_SEEDS: [u64; 4] = [
    0x910a_2dec_8902_5cc1,
    0xbeeb_8da1_658e_aa12,
    0xf4f4_f88f_0d15_4b37,
    0x6a79_73e4_2bb2_b9a4,
];

/// A 4-bit count-min sketch with periodic halving ("aging").
///
/// `record` bumps the key's counter in each of four rows (saturating at
/// 15); `estimate` reads the minimum over the rows, which bounds the
/// true recent frequency from above with high probability. The table is
/// sized to the cache capacity it protects so hot keys reach the
/// saturation plateau quickly while tail keys stay near zero.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    table: Vec<u64>,
    /// `counters - 1`; the counter count is a power of two.
    index_mask: u64,
    /// Lookups recorded since the last halving.
    samples: u64,
    /// Halve every counter once `samples` reaches this.
    sample_cap: u64,
    agings: u64,
}

impl FrequencySketch {
    /// A sketch protecting a cache segment of `capacity` entries: eight
    /// counters per entry (rounded up to a power of two, at least 64),
    /// aged every `10 * capacity` recorded lookups.
    pub fn new(capacity: usize) -> Self {
        let counters = (capacity.max(1).saturating_mul(8)).next_power_of_two().max(64);
        FrequencySketch {
            table: vec![0u64; counters / 16],
            index_mask: (counters - 1) as u64,
            samples: 0,
            sample_cap: 10 * capacity.max(1) as u64,
            agings: 0,
        }
    }

    /// The counter index of `hash` in `row` — SplitMix64-style finishing
    /// over the seeded hash spreads nearby key hashes across the table.
    fn index(&self, hash: u64, row: usize) -> usize {
        let mut z = hash ^ ROW_SEEDS[row];
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z & self.index_mask) as usize
    }

    fn counter(&self, idx: usize) -> u64 {
        (self.table[idx / 16] >> ((idx % 16) * 4)) & COUNTER_MAX
    }

    /// Records one lookup of `hash`, aging the whole table when the
    /// sample counter saturates.
    pub fn record(&mut self, hash: u64) {
        for row in 0..ROW_SEEDS.len() {
            let idx = self.index(hash, row);
            if self.counter(idx) < COUNTER_MAX {
                self.table[idx / 16] += 1 << ((idx % 16) * 4);
            }
        }
        self.samples += 1;
        if self.samples >= self.sample_cap {
            self.halve();
        }
    }

    /// The estimated recent frequency of `hash`: the minimum counter
    /// over the four rows (15 is the saturation plateau).
    pub fn estimate(&self, hash: u64) -> u64 {
        (0..ROW_SEEDS.len())
            .map(|row| self.counter(self.index(hash, row)))
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter and the sample counter — the TinyLFU aging
    /// step. Public so tests can force an aging and check that relative
    /// frequency order is preserved (`a >= b` implies `a/2 >= b/2`).
    pub fn halve(&mut self) {
        for word in self.table.iter_mut() {
            *word = (*word >> 1) & HALVE_MASK;
        }
        self.samples /= 2;
        self.agings += 1;
    }

    /// How many aging (halving) passes have run.
    pub fn agings(&self) -> u64 {
        self.agings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_recorded_counts_up_to_saturation() {
        let mut sketch = FrequencySketch::new(64);
        assert_eq!(sketch.estimate(42), 0);
        for i in 1..=15u64 {
            sketch.record(42);
            assert_eq!(sketch.estimate(42), i, "after {i} records");
        }
        // Saturates at the 4-bit ceiling.
        sketch.record(42);
        sketch.record(42);
        assert_eq!(sketch.estimate(42), 15);
    }

    #[test]
    fn distinct_hashes_rarely_alias() {
        let mut sketch = FrequencySketch::new(256);
        for _ in 0..10 {
            sketch.record(7);
        }
        // A count-min estimate only ever over-approximates; with 8
        // counters per entry the untouched keys stay near zero.
        let inflated = (0..100u64).filter(|h| sketch.estimate(1000 + h) > 0).count();
        assert!(inflated <= 2, "{inflated} of 100 cold keys aliased a hot row");
    }

    #[test]
    fn halving_halves_estimates_and_preserves_order() {
        let mut sketch = FrequencySketch::new(64);
        for _ in 0..12 {
            sketch.record(1);
        }
        for _ in 0..5 {
            sketch.record(2);
        }
        let (hot, warm) = (sketch.estimate(1), sketch.estimate(2));
        assert!(hot > warm);
        sketch.halve();
        assert_eq!(sketch.estimate(1), hot / 2);
        assert_eq!(sketch.estimate(2), warm / 2);
        assert!(sketch.estimate(1) >= sketch.estimate(2), "halving reordered frequencies");
        assert_eq!(sketch.agings(), 1);
    }

    #[test]
    fn aging_fires_when_samples_saturate() {
        let mut sketch = FrequencySketch::new(1); // sample_cap = 10
        for h in 0..10u64 {
            sketch.record(h);
        }
        assert_eq!(sketch.agings(), 1, "10 samples at capacity 1 must age once");
    }

    #[test]
    fn sketch_is_deterministic_across_rebuilds() {
        let build = || {
            let mut s = FrequencySketch::new(32);
            for h in 0..500u64 {
                s.record(h % 37);
            }
            (0..37u64).map(|h| s.estimate(h)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
