//! Live-data evaluation: interleaves synthetic tick appends with
//! dev-set questions and proves, at every epoch, that the served
//! answers are byte-identical to a cold engine rebuilt from the
//! replayed change log.
//!
//! The scenario [`evaluate_ex_live`] drives:
//!
//! 1. a **cold reference** is built from a fresh
//!    [`BullDataset::generate`] at the same seed — the base snapshot —
//!    and caught up each round by *replaying* the live databases'
//!    change logs and rebuilding its data-derived artifacts from
//!    scratch ([`FinSql::rebuild_data`]);
//! 2. each round, `bull::datagen`-minted ticks are appended through the
//!    validated live path (`Database::apply_changes`), the live system
//!    absorbs the log tail incrementally ([`FinSql::absorb_appends`]),
//!    and the config fingerprint is asserted to have moved;
//! 3. the round's dev questions are then served through **every**
//!    serving path — fresh, cached (a shared [`AnswerCache`] that lives
//!    across epochs), micro-batched, and the coalescing
//!    [`BatchScheduler`] — and every answer is asserted byte-identical
//!    to the cold reference's fresh answer at the same epoch.
//!
//! The cache passes double as the stale-hit proof: the same questions
//! are re-asked every round against the same shared cache, and the
//! first pass after an append must be *all misses* (the epoch moved the
//! fingerprint, so every pre-append entry is unreachable), while the
//! second pass within the round must be all hits.

use crate::batch::{BatchConfig, BatchScheduler};
use crate::cache::{Answerer, AnswerCache};
use crate::eval::EvalOutcome;
use crate::metrics::EvalMetrics;
use crate::pipeline::FinSql;
use bull::{BullDataset, DbId, Split};
use sqlengine::execution_accuracy;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Shape of one live-evaluation scenario.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Append rounds after the initial epoch-0 round; each round appends
    /// one change record per leaf fact table per database.
    pub epochs: usize,
    /// Rows minted per leaf fact table per round.
    pub rows_per_table: usize,
    /// Dev questions served per database per round (the same slice every
    /// round, so cross-epoch cache behaviour is observable).
    pub questions_per_db: usize,
    /// Seed stream for tick minting (mixed with the round number).
    pub tick_seed: u64,
    /// Micro-batch size of the batched pass and the scheduler.
    pub batch: usize,
    /// Scheduler worker threads (and concurrent submitters).
    pub workers: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            epochs: 3,
            rows_per_table: 2,
            questions_per_db: 8,
            tick_seed: 0x71C5,
            batch: 3,
            workers: 2,
        }
    }
}

/// What one round (one data epoch per database) served and proved.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Per-database epoch after this round's appends, in [`DbId::ALL`]
    /// order.
    pub epochs: [u64; 3],
    /// Execution accuracy of the fresh path against gold SQL *on the
    /// current data state*.
    pub ex: EvalOutcome,
    /// Answers served this round across all four paths.
    pub served: usize,
    /// Cache hits on the round's first cached pass — zero by
    /// construction (round 0 is cold; later rounds follow an epoch bump
    /// that re-keys every entry).
    pub first_pass_hits: u64,
    /// Cache hits on the round's second cached pass — every question,
    /// by construction (the first pass filled the current-epoch keys).
    pub second_pass_hits: u64,
}

/// The full scenario's totals.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    pub rounds: Vec<RoundReport>,
    /// Change records applied across the run (= epoch bumps summed over
    /// databases).
    pub change_records: usize,
    /// Rows those records carried.
    pub appended_rows: usize,
    /// Answers served across all rounds and paths.
    pub served: usize,
}

impl LiveOutcome {
    /// Pooled fresh-path EX over every round.
    pub fn pooled_ex(&self) -> EvalOutcome {
        let mut pooled = EvalOutcome::default();
        for r in &self.rounds {
            pooled.absorb(&r.ex);
        }
        pooled
    }
}

/// Runs the live scenario described in the module docs. `system` must
/// have been built on `ds`, and `dataset_seed` must be the seed `ds` was
/// generated from — the cold reference regenerates the base snapshot
/// from it and replays the live change logs on top. Returns the system
/// (threaded through by value because the scheduler pass needs `Arc`
/// ownership) together with the outcome. Panics — with the offending
/// question — if any served answer differs from the cold reference, if
/// an epoch bump fails to move the fingerprint, or if the cache serves
/// across an epoch boundary.
pub fn evaluate_ex_live(
    ds: &mut BullDataset,
    mut system: FinSql,
    dataset_seed: u64,
    cfg: &LiveConfig,
    metrics: Option<&EvalMetrics>,
) -> (FinSql, LiveOutcome) {
    let lang = system.config.lang;
    // The question slate is fixed up front: examples are minted before
    // any append, so the same (db, question, gold) triples are valid at
    // every epoch — only their answers' data state moves.
    let slate: Vec<(DbId, String, String)> = DbId::ALL
        .into_iter()
        .flat_map(|db| {
            ds.examples_for(db, Split::Dev)
                .into_iter()
                .take(cfg.questions_per_db)
                .map(move |e| (db, e.question(lang).to_string(), e.sql.clone()))
                .collect::<Vec<_>>()
        })
        .collect();

    // Cold reference: the same training run on the regenerated base
    // snapshot. Training sees only examples (identical by seed), so the
    // two systems start fingerprint-equal; data state is caught up by
    // replay + from-scratch rebuild each round.
    let mut cold_ds = BullDataset::generate(dataset_seed);
    let mut cold = FinSql::build(&cold_ds, system.profile, system.config);

    let cache = AnswerCache::unbounded();
    let mut outcome = LiveOutcome {
        rounds: Vec::with_capacity(cfg.epochs + 1),
        change_records: 0,
        appended_rows: 0,
        served: 0,
    };
    let mut prev_fingerprint = system.config_fingerprint();

    for round in 0..=cfg.epochs {
        // --- Append phase (every round after the first). ---
        if round > 0 {
            for db in DbId::ALL {
                let ticks =
                    ds.mint_ticks(db, cfg.tick_seed.wrapping_add(round as u64), cfg.rows_per_table);
                let records = ticks.len();
                let rows: usize = ticks.iter().map(|(_, r)| r.len()).sum();
                // INVARIANT: mint_ticks draws FK values from the
                // generator's own key pools and types from the column
                // profiles, so the live validation path accepts them.
                ds.db_mut(db).apply_changes(ticks).expect("minted ticks are valid");
                system.absorb_appends(db, ds.db(db));
                if let Some(m) = metrics {
                    m.record_append(records as u64, rows as u64);
                }
                outcome.change_records += records;
                outcome.appended_rows += rows;
            }
            let fingerprint = system.config_fingerprint();
            assert_ne!(
                fingerprint, prev_fingerprint,
                "epoch bump must move the config fingerprint (round {round})"
            );
            prev_fingerprint = fingerprint;
        }

        // --- Cold catch-up: replay the logs, rebuild from scratch. ---
        for db in DbId::ALL {
            // INVARIANT: the cold database is the same base snapshot
            // (same seed), so replaying the live log onto it revalidates
            // rows that already passed the live path once.
            cold_ds.db_mut(db).replay(ds.db(db).change_log()).expect("replay onto equal base");
            cold.rebuild_data(db, cold_ds.db(db));
            assert_eq!(
                cold_ds.db(db).epoch(),
                ds.db(db).epoch(),
                "replay must reach the live epoch ({db})"
            );
        }
        assert_eq!(
            cold.config_fingerprint(),
            prev_fingerprint,
            "cold rebuild at the same epoch must fingerprint-match the live system"
        );

        let mut report = RoundReport {
            epochs: [
                ds.db(DbId::Fund).epoch().0,
                ds.db(DbId::Stock).epoch().0,
                ds.db(DbId::Macro).epoch().0,
            ],
            ex: EvalOutcome::default(),
            served: 0,
            first_pass_hits: 0,
            second_pass_hits: 0,
        };

        // --- Path 1: fresh (also mints the round's reference answers
        // from the cold engine and scores EX on the current data). ---
        let mut refs: Vec<String> = Vec::with_capacity(slate.len());
        for (db, question, gold) in &slate {
            let live = system.answer_fresh(*db, question, metrics);
            let reference = cold.answer_fresh(*db, question, None);
            assert_eq!(
                live, reference,
                "fresh answer diverged from cold rebuild (round {round}, {db}: {question})"
            );
            if execution_accuracy(ds.db(*db), &live, gold) {
                report.ex.correct += 1;
            }
            report.ex.total += 1;
            report.served += 1;
            refs.push(live);
        }

        // --- Path 2: cached, twice through the shared epoch-spanning
        // cache. First pass must be all misses (cold cache at round 0, a
        // fingerprint-moving epoch bump afterwards); second pass all
        // hits. ---
        for pass in 0..2 {
            let hits_before = cache.stats().hits;
            for ((db, question, _), reference) in slate.iter().zip(&refs) {
                let answer = system.answer_cached(&cache, *db, question, metrics);
                assert_eq!(
                    &*answer, reference,
                    "cached answer diverged (round {round}, pass {pass}, {db}: {question})"
                );
                report.served += 1;
            }
            let pass_hits = cache.stats().hits - hits_before;
            if pass == 0 {
                assert_eq!(
                    pass_hits, 0,
                    "stale hit: cache served across an epoch boundary (round {round})"
                );
                report.first_pass_hits = pass_hits;
            } else {
                assert_eq!(
                    pass_hits,
                    slate.len() as u64,
                    "warm pass must be served entirely from cache (round {round})"
                );
                report.second_pass_hits = pass_hits;
            }
        }

        // --- Path 3: micro-batched (uncached). ---
        for db in DbId::ALL {
            let idx: Vec<usize> =
                (0..slate.len()).filter(|&i| slate[i].0 == db).collect();
            for chunk in idx.chunks(cfg.batch.max(1)) {
                let questions: Vec<&str> =
                    chunk.iter().map(|&i| slate[i].1.as_str()).collect();
                let answers = system.answer_batch_with_metrics(db, &questions, metrics);
                for (&i, answer) in chunk.iter().zip(&answers) {
                    assert_eq!(
                        answer, &refs[i],
                        "batched answer diverged (round {round}, {db}: {})",
                        slate[i].1
                    );
                    report.served += 1;
                }
            }
        }

        // --- Path 4: the coalescing scheduler (uncached), fed from
        // concurrent submitters so batches actually form. ---
        let shared = Arc::new(system);
        {
            let scheduler = BatchScheduler::new(
                Arc::clone(&shared),
                None,
                None,
                BatchConfig {
                    max_batch: cfg.batch.max(1),
                    flush: Duration::from_millis(2),
                    workers: cfg.workers.max(1),
                    queue_cap: 64,
                },
            );
            let answers: Mutex<Vec<Option<Arc<str>>>> = Mutex::new(vec![None; slate.len()]);
            let next = AtomicUsize::new(0);
            let submitters = cfg.workers.max(1).min(slate.len().max(1));
            crossbeam::scope(|scope| {
                for _ in 0..submitters {
                    scope.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slate.len() {
                            break;
                        }
                        let (db, question, _) = &slate[i];
                        let answer = scheduler.answer(*db, question);
                        // INVARIANT: slot mutex is only poisoned by a
                        // sibling submitter panic, which fails the round
                        // anyway.
                        answers.lock().expect("answers lock poisoned")[i] = Some(answer);
                    });
                }
            })
            // INVARIANT: scope() only errs when a submitter panicked,
            // and a submitter panic is a test failure by design.
            .expect("scheduler submitter panicked");
            // INVARIANT: every index below slate.len() was claimed and
            // filled by exactly one submitter before the scope joined.
            let answers = answers.into_inner().expect("answers lock poisoned");
            for (i, answer) in answers.into_iter().enumerate() {
                // INVARIANT: as above — the scope joined, so every slot
                // is Some.
                let answer = answer.expect("scheduler answered every question");
                assert_eq!(
                    &*answer, refs[i],
                    "scheduler answer diverged (round {round}, {}: {})",
                    slate[i].0, slate[i].1
                );
                report.served += 1;
            }
        }
        system = match Arc::try_unwrap(shared) {
            Ok(s) => s,
            // INVARIANT: the scheduler (sole clone holder) joined its
            // workers on drop, so this Arc is unique again.
            Err(_) => unreachable!("scheduler released its engine handle"),
        };

        outcome.served += report.served;
        outcome.rounds.push(report);
    }
    (system, outcome)
}
