//! Execution-accuracy (EX) evaluation, the paper's metric for every
//! Text-to-SQL result table.

use bull::{BullDataset, DbId, Lang, Split};
use sqlengine::execution_accuracy;

/// EX counts for one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    pub correct: usize,
    pub total: usize,
}

impl EvalOutcome {
    /// Execution accuracy in `[0, 1]`.
    pub fn ex(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Execution accuracy as a percentage.
    pub fn ex_pct(&self) -> f64 {
        self.ex() * 100.0
    }

    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: &EvalOutcome) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Evaluates a prediction function over the dev split of one database.
/// `predict` maps a question to the final SQL.
pub fn evaluate_ex(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    mut predict: impl FnMut(&str) -> String,
) -> EvalOutcome {
    let database = ds.db(db);
    let mut outcome = EvalOutcome::default();
    for e in ds.examples_for(db, Split::Dev) {
        let predicted = predict(e.question(lang));
        if execution_accuracy(database, &predicted, &e.sql) {
            outcome.correct += 1;
        }
        outcome.total += 1;
    }
    outcome
}

/// Evaluates over every database and pools the counts (the headline EX of
/// Tables 4/5 covers all three dev sets).
pub fn evaluate_ex_all(
    ds: &BullDataset,
    lang: Lang,
    mut predict: impl FnMut(DbId, &str) -> String,
) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per_db = evaluate_ex(ds, db, lang, |q| predict(db, q));
        outcome.absorb(&per_db);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_arithmetic() {
        let mut a = EvalOutcome { correct: 3, total: 4 };
        assert_eq!(a.ex(), 0.75);
        assert_eq!(a.ex_pct(), 75.0);
        a.absorb(&EvalOutcome { correct: 1, total: 4 });
        assert_eq!(a.ex(), 0.5);
        assert_eq!(EvalOutcome::default().ex(), 0.0);
    }
}
