//! Execution-accuracy (EX) evaluation, the paper's metric for every
//! Text-to-SQL result table.

use bull::{BullDataset, DbId, Lang, Split};
use sqlengine::execution_accuracy;

/// EX counts for one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    pub correct: usize,
    pub total: usize,
}

impl EvalOutcome {
    /// Execution accuracy in `[0, 1]`.
    pub fn ex(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Execution accuracy as a percentage.
    pub fn ex_pct(&self) -> f64 {
        self.ex() * 100.0
    }

    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: &EvalOutcome) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Evaluates a prediction function over the dev split of one database.
/// `predict` maps a question to the final SQL.
pub fn evaluate_ex(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    predict: impl FnMut(&str) -> String,
) -> EvalOutcome {
    evaluate_ex_limit(ds, db, lang, None, predict)
}

/// [`evaluate_ex`] restricted to the first `limit` dev examples (`None`
/// means all) — the serial reference the parallel path is checked
/// against on small slices.
pub fn evaluate_ex_limit(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    limit: Option<usize>,
    mut predict: impl FnMut(&str) -> String,
) -> EvalOutcome {
    let database = ds.db(db);
    let dev = ds.examples_for(db, Split::Dev);
    let n = limit.unwrap_or(dev.len()).min(dev.len());
    let mut outcome = EvalOutcome::default();
    for e in &dev[..n] {
        let predicted = predict(e.question(lang));
        if execution_accuracy(database, &predicted, &e.sql) {
            outcome.correct += 1;
        }
        outcome.total += 1;
    }
    outcome
}

/// Sharded evaluation: fans the dev examples of one database over a pool
/// of scoped worker threads pulling from a shared work index. `predict`
/// must be deterministic per question (seed the RNG from the question, as
/// [`crate::pipeline::FinSql::question_rng`] does); correctness is then
/// order-independent and the pooled counts equal the serial path's
/// exactly. `workers == 0` sizes the pool to the available parallelism.
pub fn evaluate_ex_parallel(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    workers: usize,
    limit: Option<usize>,
    predict: impl Fn(&str) -> String + Sync,
) -> EvalOutcome {
    let database = ds.db(db);
    let dev = ds.examples_for(db, Split::Dev);
    let n = limit.unwrap_or(dev.len()).min(dev.len());
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        workers
    }
    .min(n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (dev, predict, next) = (&dev, &predict, &next);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut local = EvalOutcome::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break local;
                        }
                        let e = &dev[i];
                        let predicted = predict(e.question(lang));
                        if execution_accuracy(database, &predicted, &e.sql) {
                            local.correct += 1;
                        }
                        local.total += 1;
                    }
                })
            })
            .collect();
        let mut outcome = EvalOutcome::default();
        for h in handles {
            outcome.absorb(&h.join().expect("evaluation worker panicked"));
        }
        outcome
    })
    .expect("evaluation pool panicked")
}

/// Parallel pooled evaluation over every database, the counterpart of
/// [`evaluate_ex_all`].
pub fn evaluate_ex_all_parallel(
    ds: &BullDataset,
    lang: Lang,
    workers: usize,
    predict: impl Fn(DbId, &str) -> String + Sync,
) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per = evaluate_ex_parallel(ds, db, lang, workers, None, |q| predict(db, q));
        outcome.absorb(&per);
    }
    outcome
}

/// Evaluates over every database and pools the counts (the headline EX of
/// Tables 4/5 covers all three dev sets).
pub fn evaluate_ex_all(
    ds: &BullDataset,
    lang: Lang,
    mut predict: impl FnMut(DbId, &str) -> String,
) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per_db = evaluate_ex(ds, db, lang, |q| predict(db, q));
        outcome.absorb(&per_db);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_arithmetic() {
        let mut a = EvalOutcome { correct: 3, total: 4 };
        assert_eq!(a.ex(), 0.75);
        assert_eq!(a.ex_pct(), 75.0);
        a.absorb(&EvalOutcome { correct: 1, total: 4 });
        assert_eq!(a.ex(), 0.5);
        assert_eq!(EvalOutcome::default().ex(), 0.0);
    }
}
