//! Execution-accuracy (EX) evaluation, the paper's metric for every
//! Text-to-SQL result table.

use bull::{BullDataset, DbId, Lang, Split};
use sqlengine::execution_accuracy;

/// EX counts for one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    pub correct: usize,
    pub total: usize,
}

impl EvalOutcome {
    /// Execution accuracy in `[0, 1]`.
    pub fn ex(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Execution accuracy as a percentage.
    pub fn ex_pct(&self) -> f64 {
        self.ex() * 100.0
    }

    /// Merges another outcome into this one.
    pub fn absorb(&mut self, other: &EvalOutcome) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Evaluates a prediction function over the dev split of one database.
/// `predict` maps a question to the final SQL. Predictions may be any
/// string-like type (`String`, `Arc<str>`, …) so cached paths can hand
/// back shared answers without re-allocating.
pub fn evaluate_ex<S: AsRef<str>>(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    predict: impl FnMut(&str) -> S,
) -> EvalOutcome {
    evaluate_ex_limit(ds, db, lang, None, predict)
}

/// [`evaluate_ex`] restricted to the first `limit` dev examples (`None`
/// means all) — the serial reference the parallel path is checked
/// against on small slices.
pub fn evaluate_ex_limit<S: AsRef<str>>(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    limit: Option<usize>,
    mut predict: impl FnMut(&str) -> S,
) -> EvalOutcome {
    let database = ds.db(db);
    let dev = ds.examples_for(db, Split::Dev);
    let n = limit.unwrap_or(dev.len()).min(dev.len());
    let mut outcome = EvalOutcome::default();
    for e in &dev[..n] {
        let predicted = predict(e.question(lang));
        if execution_accuracy(database, predicted.as_ref(), &e.sql) {
            outcome.correct += 1;
        }
        outcome.total += 1;
    }
    outcome
}

/// Sharded evaluation: fans the dev examples of one database over a pool
/// of scoped worker threads pulling from a shared work index. `predict`
/// must be deterministic per question (seed the RNG from the question, as
/// [`crate::pipeline::FinSql::question_rng`] does); correctness is then
/// order-independent and the pooled counts equal the serial path's
/// exactly. `workers == 0` sizes the pool to the available parallelism.
pub fn evaluate_ex_parallel<S: AsRef<str>>(
    ds: &BullDataset,
    db: DbId,
    lang: Lang,
    workers: usize,
    limit: Option<usize>,
    predict: impl Fn(&str) -> S + Sync,
) -> EvalOutcome {
    let database = ds.db(db);
    let dev = ds.examples_for(db, Split::Dev);
    let n = limit.unwrap_or(dev.len()).min(dev.len());
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        workers
    }
    .min(n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (dev, predict, next) = (&dev, &predict, &next);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut local = EvalOutcome::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break local;
                        }
                        let e = &dev[i];
                        let predicted = predict(e.question(lang));
                        if execution_accuracy(database, predicted.as_ref(), &e.sql) {
                            local.correct += 1;
                        }
                        local.total += 1;
                    }
                })
            })
            .collect();
        let mut outcome = EvalOutcome::default();
        for h in handles {
            // INVARIANT: a worker panic invalidates the whole run; join
            // re-raises it on the coordinating thread by design.
            outcome.absorb(&h.join().expect("evaluation worker panicked"));
        }
        outcome
    })
    // INVARIANT: scope() only errs when a worker panicked, which the
    // joins above already re-raise; this expect cannot fire first.
    .expect("evaluation pool panicked")
}

/// Per-database EX counts of one cross-database run, in [`DbId::ALL`]
/// order. The pooled headline number is [`MultiDbOutcome::pooled`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiDbOutcome {
    pub per_db: [EvalOutcome; DbId::ALL.len()],
}

impl MultiDbOutcome {
    /// The outcome of one database.
    pub fn outcome(&self, db: DbId) -> &EvalOutcome {
        // INVARIANT: DbId::ALL enumerates every DbId variant, so the
        // position lookup always succeeds.
        let idx = DbId::ALL.iter().position(|&d| d == db).expect("db in canonical order");
        &self.per_db[idx]
    }

    /// Counts pooled over every database (the headline EX of Tables 4/5).
    pub fn pooled(&self) -> EvalOutcome {
        let mut pooled = EvalOutcome::default();
        for per in &self.per_db {
            pooled.absorb(per);
        }
        pooled
    }
}

/// Cross-database sharded evaluation over **one** work queue: the dev
/// examples of all three databases are interleaved and a single worker
/// pool drains them, so no worker idles at a database boundary (the tail
/// barrier the per-database loop of [`evaluate_ex_all`] pays three
/// times). `predict` must be deterministic per `(db, question)`;
/// correctness is then order-independent and the per-database counts
/// equal the serial path's exactly. `limit_per_db` truncates each dev
/// set (for tests); `workers == 0` sizes the pool to the available
/// parallelism.
pub fn evaluate_ex_all_interleaved<S: AsRef<str>>(
    ds: &BullDataset,
    lang: Lang,
    workers: usize,
    limit_per_db: Option<usize>,
    predict: impl Fn(DbId, &str) -> S + Sync,
) -> MultiDbOutcome {
    // One flat work list: (database index, example), the three dev sets
    // round-robin interleaved so the queue mixes databases end to end.
    let per_db: Vec<Vec<_>> = DbId::ALL
        .into_iter()
        .map(|db| {
            let dev = ds.examples_for(db, Split::Dev);
            let n = limit_per_db.unwrap_or(dev.len()).min(dev.len());
            dev.into_iter().take(n).collect()
        })
        .collect();
    let longest = per_db.iter().map(|d| d.len()).max().unwrap_or(0);
    let mut work = Vec::with_capacity(per_db.iter().map(|d| d.len()).sum());
    for i in 0..longest {
        for (di, dev) in per_db.iter().enumerate() {
            if let Some(e) = dev.get(i) {
                work.push((di, *e));
            }
        }
    }
    let n = work.len();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        workers
    }
    .min(n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (work, predict, next) = (&work, &predict, &next);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut local = MultiDbOutcome::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break local;
                        }
                        let (di, e) = &work[i];
                        let db = DbId::ALL[*di];
                        let predicted = predict(db, e.question(lang));
                        if execution_accuracy(ds.db(db), predicted.as_ref(), &e.sql) {
                            local.per_db[*di].correct += 1;
                        }
                        local.per_db[*di].total += 1;
                    }
                })
            })
            .collect();
        let mut outcome = MultiDbOutcome::default();
        for h in handles {
            // INVARIANT: a worker panic invalidates the whole run; join
            // re-raises it on the coordinating thread by design.
            let local = h.join().expect("evaluation worker panicked");
            for (acc, per) in outcome.per_db.iter_mut().zip(&local.per_db) {
                acc.absorb(per);
            }
        }
        outcome
    })
    // INVARIANT: scope() only errs when a worker panicked, which the
    // joins above already re-raise; this expect cannot fire first.
    .expect("evaluation pool panicked")
}

/// [`evaluate_ex_all_interleaved`] over micro-batches: each database's
/// dev set is chunked into batches of `batch` questions, the chunks of
/// all three databases are round-robin interleaved into one work queue,
/// and the worker pool drains it calling `predict_batch` once per chunk.
/// `predict_batch` must return one answer per question, each
/// deterministic per `(db, question)` and independent of batch shape —
/// exactly what [`crate::pipeline::FinSql::answer_batch`] guarantees —
/// so the per-database counts equal the serial path's at every batch
/// size and worker count. `batch == 0` is treated as 1.
pub fn evaluate_ex_all_interleaved_batched<S: AsRef<str>>(
    ds: &BullDataset,
    lang: Lang,
    workers: usize,
    limit_per_db: Option<usize>,
    batch: usize,
    predict_batch: impl Fn(DbId, &[&str]) -> Vec<S> + Sync,
) -> MultiDbOutcome {
    let batch = batch.max(1);
    // One flat work list of (database index, chunk of examples), the
    // three databases' chunk sequences round-robin interleaved.
    let per_db: Vec<Vec<_>> = DbId::ALL
        .into_iter()
        .map(|db| {
            let dev = ds.examples_for(db, Split::Dev);
            let n = limit_per_db.unwrap_or(dev.len()).min(dev.len());
            dev.into_iter().take(n).collect::<Vec<_>>()
        })
        .collect();
    let mut work: Vec<(usize, &[&bull::BullExample])> = Vec::new();
    let longest_chunks = per_db.iter().map(|d| d.len().div_ceil(batch)).max().unwrap_or(0);
    for c in 0..longest_chunks {
        for (di, dev) in per_db.iter().enumerate() {
            let start = c * batch;
            if start < dev.len() {
                work.push((di, &dev[start..(start + batch).min(dev.len())]));
            }
        }
    }
    let n = work.len();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        workers
    }
    .min(n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (work, predict_batch, next) = (&work, &predict_batch, &next);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut local = MultiDbOutcome::default();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break local;
                        }
                        let (di, chunk) = &work[i];
                        let db = DbId::ALL[*di];
                        let questions: Vec<&str> =
                            chunk.iter().map(|e| e.question(lang)).collect();
                        let predicted = predict_batch(db, &questions);
                        assert_eq!(
                            predicted.len(),
                            chunk.len(),
                            "predict_batch must answer every question"
                        );
                        for (e, p) in chunk.iter().zip(&predicted) {
                            if execution_accuracy(ds.db(db), p.as_ref(), &e.sql) {
                                local.per_db[*di].correct += 1;
                            }
                            local.per_db[*di].total += 1;
                        }
                    }
                })
            })
            .collect();
        let mut outcome = MultiDbOutcome::default();
        for h in handles {
            // INVARIANT: a worker panic invalidates the whole run; join
            // re-raises it on the coordinating thread by design.
            let local = h.join().expect("evaluation worker panicked");
            for (acc, per) in outcome.per_db.iter_mut().zip(&local.per_db) {
                acc.absorb(per);
            }
        }
        outcome
    })
    // INVARIANT: scope() only errs when a worker panicked, which the
    // joins above already re-raise; this expect cannot fire first.
    .expect("evaluation pool panicked")
}

/// The serial per-database reference for [`evaluate_ex_all_interleaved`]
/// — identical counts, one thread, databases walked in canonical order.
pub fn evaluate_ex_all_limit<S: AsRef<str>>(
    ds: &BullDataset,
    lang: Lang,
    limit_per_db: Option<usize>,
    mut predict: impl FnMut(DbId, &str) -> S,
) -> MultiDbOutcome {
    let mut outcome = MultiDbOutcome::default();
    for (di, db) in DbId::ALL.into_iter().enumerate() {
        outcome.per_db[di] =
            evaluate_ex_limit(ds, db, lang, limit_per_db, |q| predict(db, q));
    }
    outcome
}

/// Parallel pooled evaluation over every database, the counterpart of
/// [`evaluate_ex_all`]. Runs on the interleaved cross-database queue —
/// one worker pool over all three dev sets, no per-database tail.
pub fn evaluate_ex_all_parallel<S: AsRef<str>>(
    ds: &BullDataset,
    lang: Lang,
    workers: usize,
    predict: impl Fn(DbId, &str) -> S + Sync,
) -> EvalOutcome {
    evaluate_ex_all_interleaved(ds, lang, workers, None, predict).pooled()
}

/// Evaluates over every database and pools the counts (the headline EX of
/// Tables 4/5 covers all three dev sets).
pub fn evaluate_ex_all<S: AsRef<str>>(
    ds: &BullDataset,
    lang: Lang,
    mut predict: impl FnMut(DbId, &str) -> S,
) -> EvalOutcome {
    let mut outcome = EvalOutcome::default();
    for db in DbId::ALL {
        let per_db = evaluate_ex(ds, db, lang, |q| predict(db, q));
        outcome.absorb(&per_db);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_arithmetic() {
        let mut a = EvalOutcome { correct: 3, total: 4 };
        assert_eq!(a.ex(), 0.75);
        assert_eq!(a.ex_pct(), 75.0);
        a.absorb(&EvalOutcome { correct: 1, total: 4 });
        assert_eq!(a.ex(), 0.5);
        assert_eq!(EvalOutcome::default().ex(), 0.0);
    }
}
