//! Linking-quality metrics: AUC (paper Table 6) and recall@k (Table 7).

use crate::infer::{InferenceMode, LinkedSchema};
use crate::model::{CrossEncoder, SchemaViews};
use crate::train::LinkExample;
use sqlkit::catalog::CatalogSchema;

/// Area under the ROC curve from (score, label) pairs, computed via the
/// Mann–Whitney rank statistic with tie correction.
pub fn auc(scored: &[(f32, bool)]) -> f64 {
    let mut sorted: Vec<&(f32, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n_pos = scored.iter().filter(|(_, l)| *l).count();
    let n_neg = scored.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 1.0;
    }
    // Average ranks over ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        // Ranks are 1-based; the tied block [i, j) shares the average rank.
        let avg_rank = (i + 1 + j) as f64 / 2.0;
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Aggregated linking evaluation over a dev set.
#[derive(Debug, Clone)]
pub struct LinkEval {
    pub table_auc: f64,
    pub column_auc: f64,
    /// `recall@k` for tables at the requested cutoffs: the fraction of
    /// examples whose gold tables are all within the top-k.
    pub table_recall: Vec<(usize, f64)>,
    /// `recall@k` for columns: gold columns all within the top-k columns
    /// of their own table.
    pub column_recall: Vec<(usize, f64)>,
}

/// Evaluates a model on dev examples against their schemas.
pub fn evaluate(
    model: &CrossEncoder,
    schemas: &[&CatalogSchema],
    views: &[SchemaViews],
    examples: &[LinkExample],
    table_ks: &[usize],
    column_ks: &[usize],
) -> LinkEval {
    let mut table_scored: Vec<(f32, bool)> = Vec::new();
    let mut column_scored: Vec<(f32, bool)> = Vec::new();
    let mut table_hits = vec![0usize; table_ks.len()];
    let mut column_hits = vec![0usize; column_ks.len()];
    for ex in examples {
        let schema = schemas[ex.schema_idx];
        let linked = model.link(&ex.question, &views[ex.schema_idx], InferenceMode::Parallel);
        collect_scored(schema, ex, &linked, &mut table_scored, &mut column_scored);
        for (ki, &k) in table_ks.iter().enumerate() {
            if tables_covered(schema, ex, &linked, k) {
                table_hits[ki] += 1;
            }
        }
        for (ki, &k) in column_ks.iter().enumerate() {
            if columns_covered(schema, ex, &linked, k) {
                column_hits[ki] += 1;
            }
        }
    }
    let n = examples.len().max(1) as f64;
    LinkEval {
        table_auc: auc(&table_scored),
        column_auc: auc(&column_scored),
        table_recall: table_ks.iter().zip(table_hits).map(|(&k, h)| (k, h as f64 / n)).collect(),
        column_recall: column_ks.iter().zip(column_hits).map(|(&k, h)| (k, h as f64 / n)).collect(),
    }
}

fn collect_scored(
    schema: &CatalogSchema,
    ex: &LinkExample,
    linked: &LinkedSchema,
    table_scored: &mut Vec<(f32, bool)>,
    column_scored: &mut Vec<(f32, bool)>,
) {
    for (ti, score) in &linked.tables {
        let name = &schema.tables[*ti].name;
        let label = ex.gold_tables.iter().any(|g| g.eq_ignore_ascii_case(name));
        table_scored.push((*score, label));
    }
    for (ti, cols) in linked.columns.iter().enumerate() {
        let tname = &schema.tables[ti].name;
        for (ci, score) in cols {
            let cname = &schema.tables[ti].columns[*ci].name;
            let label = ex.gold_columns.iter().any(|(gt, gc)| {
                gt.eq_ignore_ascii_case(tname) && gc.eq_ignore_ascii_case(cname)
            });
            column_scored.push((*score, label));
        }
    }
}

fn tables_covered(
    schema: &CatalogSchema,
    ex: &LinkExample,
    linked: &LinkedSchema,
    k: usize,
) -> bool {
    linked.covers_tables(schema, &ex.gold_tables, k)
}

fn columns_covered(
    schema: &CatalogSchema,
    ex: &LinkExample,
    linked: &LinkedSchema,
    k: usize,
) -> bool {
    linked.covers_columns(schema, &ex.gold_columns, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&scored), 1.0);
    }

    #[test]
    fn auc_of_random_is_half() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert!((auc(&scored) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_of_inverted_is_zero() {
        let scored = vec![(0.1, true), (0.9, false)];
        assert_eq!(auc(&scored), 0.0);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scored = vec![(0.9, true), (0.7, false), (0.65, true), (0.4, false)];
        let a = auc(&scored);
        assert!(a > 0.5 && a < 1.0);
    }
}
