//! Parallel Cross-Encoder schema linking.
//!
//! The paper adapts RESDSQL's Cross-Encoder to wide financial schemas by
//! batching *per table*: instead of serialising the whole schema into one
//! sequence (which overflows BERT-context-sized models on 390-column
//! databases), each (question, table + column descriptions) pair is
//! scored independently, and all tables of a database are scored in
//! parallel.
//!
//! Our Cross-Encoder is a real trainable model: hashed lexical-overlap
//! features between the question and each table/column description feed a
//! logistic scorer per table and per column, trained with SGD on the
//! gold linking labels from the training split. Inference offers a
//! `serial` path (one table at a time, the baseline the paper criticises)
//! and a `parallel` path (crossbeam scoped threads, one batch entry per
//! table) whose speedup the `linking_parallel` bench measures.

#![forbid(unsafe_code)]

pub mod features;
pub mod infer;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod train;

pub use infer::{InferenceMode, LinkedSchema};
pub use matrix::{QuestionFeatures, SchemaFeatureMatrix};
pub use model::CrossEncoder;
pub use train::{LinkExample, TrainConfig};
