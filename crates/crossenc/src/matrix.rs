//! Batched schema linking over a precomputed schema feature matrix.
//!
//! Per-question linking ([`CrossEncoder::link`]) re-derives, for every
//! `(question, element)` pair, the hashed pair features from strings:
//! it formats `dw={word}` / `iw={word}` feature names, FNV-hashes them
//! into buckets, and membership-tests question tokens against element
//! tokens by string comparison. None of that depends on the question
//! except the *membership bits* — which words and trigrams of each
//! element the question contains. [`SchemaFeatureMatrix`] therefore
//! precomputes, once per [`SchemaViews`], everything hashable up front:
//! every element's description/identifier tokens interned to integer
//! ids with their feature buckets (`dw=…`/`iw=…`) already hashed, the
//! trigram vocabulary interned the same way, and the constant buckets
//! (`bias`, `coverage`, `trigram`, `oc=…`) resolved once. Linking a
//! question then featurises the question once ([`QuestionFeatures`]:
//! two membership bitmaps over the interned vocabularies) and scores
//! all elements with integer lookups and float adds — no string
//! formatting, hashing, or comparison on the hot path.
//!
//! **Why the matrix sweep cannot change a ranking.** For each pair the
//! sweep emits the *same* raw `(bucket, weight)` sequence, in the same
//! order, that [`pair_features`](crate::features::pair_features)
//! produces — the buckets were hashed from the identical feature
//! strings at build time, and membership over interned ids equals
//! membership over the strings they intern. The accumulation in
//! [`SchemaFeatureMatrix::dot_hashed`] then replays
//! `SparseVec::from_entries` + `dot` operation for operation (same
//! sort, same duplicate-merge order, same fold), so every score is
//! bit-identical to the per-question path's, and the shared ranking
//! code applies the same descending-score/ascending-index tie-break.
//! `link_batch(qs)[i] == link(qs[i])` exactly — scores and order.

use crate::features::ElementView;
use crate::infer::{rank_scores, LinkedSchema};
use crate::model::{sigmoid, CrossEncoder, SchemaViews};
use std::collections::HashMap;
use textenc::{char_ngrams, tokenize};

/// One schema element's precomputed feature indices: interned token ids
/// paired with their pre-hashed feature buckets, plus the interned
/// trigram set.
#[derive(Debug, Clone, Default)]
struct ElementFeatures {
    /// Description tokens in description order (duplicates kept — the
    /// coverage denominator and the overlap loop both see them), each as
    /// `(interned token id, bucket of "dw={token}")`.
    desc: Vec<(u32, u32)>,
    /// Identifier parts, each as `(interned token id, bucket of
    /// "iw={token}")`.
    ident: Vec<(u32, u32)>,
    /// Interned ids of the element's distinct description trigrams (the
    /// per-question overlap numerator counts these; the length is the
    /// denominator, exactly the [`ElementView::desc_trigrams`] set size).
    trigrams: Vec<u32>,
}

/// Pre-hashed pair-feature indices for every element of one schema —
/// built once per [`SchemaViews`] (the linking counterpart of the
/// generator's `PrototypeMatrix`), cached per database runtime, and
/// shared by every batch that links against that schema.
#[derive(Debug, Clone)]
pub struct SchemaFeatureMatrix {
    /// Interned token vocabulary over every element's description and
    /// identifier tokens.
    token_ids: HashMap<String, u32>,
    /// Interned trigram vocabulary over every element's description
    /// trigrams.
    trigram_ids: HashMap<String, u32>,
    /// Per-table features, indexed like [`SchemaViews::tables`].
    tables: Vec<ElementFeatures>,
    /// Per-table column features, indexed like [`SchemaViews::columns`].
    columns: Vec<Vec<ElementFeatures>>,
    /// Pre-hashed constant buckets: `bias`, `coverage`, `trigram`, and
    /// `oc=0` … `oc=5`.
    bias_bucket: u32,
    coverage_bucket: u32,
    trigram_bucket: u32,
    oc_buckets: [u32; 6],
}

/// One question featurised against a [`SchemaFeatureMatrix`]: membership
/// bitmaps of the question's tokens and trigrams over the matrix's
/// interned vocabularies. Built once per question, shared by every
/// element score.
#[derive(Debug, Clone)]
pub struct QuestionFeatures {
    in_tokens: Vec<bool>,
    in_trigrams: Vec<bool>,
}

fn intern(vocab: &mut HashMap<String, u32>, token: &str) -> u32 {
    if let Some(&id) = vocab.get(token) {
        return id;
    }
    // INVARIANT: the vocabulary is bounded by schema size (thousands of
    // tokens), nowhere near u32::MAX.
    let id = u32::try_from(vocab.len()).expect("schema vocabulary exceeds u32");
    vocab.insert(token.to_string(), id);
    id
}

impl SchemaFeatureMatrix {
    /// Precomputes the feature indices of every element of a schema for
    /// a model's hash space. The matrix depends only on the hasher (a
    /// pure function of [`FEATURE_BITS`]) and the views — not on the
    /// trained weights — so it survives further training untouched.
    pub fn build(model: &CrossEncoder, views: &SchemaViews) -> Self {
        let hasher = model.hasher;
        let mut token_ids = HashMap::new();
        let mut trigram_ids = HashMap::new();
        let mut element = |view: &ElementView| ElementFeatures {
            desc: view
                .desc_tokens
                .iter()
                .map(|t| (intern(&mut token_ids, t), hasher.bucket(&format!("dw={t}"))))
                .collect(),
            ident: view
                .ident_tokens
                .iter()
                .map(|t| (intern(&mut token_ids, t), hasher.bucket(&format!("iw={t}"))))
                .collect(),
            trigrams: view
                .desc_trigrams
                .iter()
                .map(|g| intern(&mut trigram_ids, g))
                .collect(),
        };
        let tables = views.tables.iter().map(&mut element).collect();
        let columns = views
            .columns
            .iter()
            .map(|cols| cols.iter().map(&mut element).collect())
            .collect();
        SchemaFeatureMatrix {
            token_ids,
            trigram_ids,
            tables,
            columns,
            bias_bucket: hasher.bucket("bias"),
            coverage_bucket: hasher.bucket("coverage"),
            trigram_bucket: hasher.bucket("trigram"),
            oc_buckets: std::array::from_fn(|b| hasher.bucket(&format!("oc={b}"))),
        }
    }

    /// Number of tables covered by the matrix.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total schema elements (tables plus columns) scored per question.
    pub fn n_elements(&self) -> usize {
        self.tables.len() + self.columns.iter().map(Vec::len).sum::<usize>()
    }

    /// Featurises one question: tokenise once, mark which interned
    /// tokens and trigrams it contains. Question tokens outside the
    /// schema vocabulary cannot overlap any element and are dropped.
    pub fn featurise(&self, question: &str) -> QuestionFeatures {
        let mut in_tokens = vec![false; self.token_ids.len()];
        let mut in_trigrams = vec![false; self.trigram_ids.len()];
        for token in tokenize(question) {
            if let Some(&id) = self.token_ids.get(&token) {
                in_tokens[id as usize] = true;
            }
            for gram in char_ngrams(&token, 3) {
                if let Some(&id) = self.trigram_ids.get(&gram) {
                    in_trigrams[id as usize] = true;
                }
            }
        }
        QuestionFeatures { in_tokens, in_trigrams }
    }

    /// The logit of one `(question, element)` pair — the exact value
    /// `pair_features(...).dot(weights)` produces, computed from the
    /// precomputed buckets. `scratch` is the reusable raw-entry buffer.
    fn element_logit(
        &self,
        q: &QuestionFeatures,
        e: &ElementFeatures,
        weights: &[f32],
        scratch: &mut Vec<(u32, f32)>,
    ) -> f32 {
        scratch.clear();
        // Mirror `pair_features` push for push: bias, description
        // overlaps, identifier overlaps, coverage, trigram ratio,
        // overlap-count bucket.
        scratch.push((self.bias_bucket, 1.0));
        let mut desc_matches = 0usize;
        for &(tid, bucket) in &e.desc {
            if q.in_tokens[tid as usize] {
                scratch.push((bucket, 1.0));
                desc_matches += 1;
            }
        }
        let mut ident_matches = 0usize;
        for &(tid, bucket) in &e.ident {
            if q.in_tokens[tid as usize] {
                scratch.push((bucket, 1.0));
                ident_matches += 1;
            }
        }
        let coverage = if e.desc.is_empty() {
            0.0
        } else {
            desc_matches as f32 / e.desc.len() as f32
        };
        scratch.push((self.coverage_bucket, coverage));
        let tri = if e.trigrams.is_empty() {
            0.0
        } else {
            let inter = e.trigrams.iter().filter(|g| q.in_trigrams[**g as usize]).count();
            inter as f32 / e.trigrams.len() as f32
        };
        scratch.push((self.trigram_bucket, tri));
        let bucket = (desc_matches + ident_matches).min(5);
        scratch.push((self.oc_buckets[bucket], 1.0));
        Self::dot_hashed(scratch, weights)
    }

    /// `SparseVec::from_entries(raw).dot(dense)` replayed on a reusable
    /// buffer: same unstable sort by bucket, duplicates summed left to
    /// right within a bucket, merged terms folded in ascending bucket
    /// order — the identical sequence of f32 operations, so the result
    /// is bit-identical, without the per-pair `SparseVec` allocation.
    fn dot_hashed(raw: &mut [(u32, f32)], dense: &[f32]) -> f32 {
        raw.sort_unstable_by_key(|(i, _)| *i);
        let mut total = 0.0f32;
        let mut k = 0usize;
        while k < raw.len() {
            let idx = raw[k].0;
            let mut w = raw[k].1;
            k += 1;
            while k < raw.len() && raw[k].0 == idx {
                w += raw[k].1;
                k += 1;
            }
            total += w * dense.get(idx as usize).copied().unwrap_or(0.0);
        }
        total
    }
}

impl CrossEncoder {
    /// Builds the precomputed feature matrix for a schema's views in
    /// this model's hash space.
    pub fn schema_matrix(&self, views: &SchemaViews) -> SchemaFeatureMatrix {
        SchemaFeatureMatrix::build(self, views)
    }

    /// Links a whole batch of questions against one schema in a single
    /// matrix sweep: each question is featurised once, then all
    /// questions × all elements are scored over the precomputed feature
    /// indices. Output `i` is exactly [`CrossEncoder::link`] of
    /// `questions[i]` — same scores bit for bit, same tie-break (module
    /// docs) — at every batch size.
    pub fn link_batch(
        &self,
        questions: &[&str],
        matrix: &SchemaFeatureMatrix,
    ) -> Vec<LinkedSchema> {
        let mut scratch: Vec<(u32, f32)> = Vec::with_capacity(32);
        questions
            .iter()
            .map(|question| {
                let q = matrix.featurise(question);
                let mut table_scores = vec![0.0f32; matrix.tables.len()];
                let mut column_scores: Vec<Vec<f32>> =
                    matrix.columns.iter().map(|c| vec![0.0; c.len()]).collect();
                for (ti, table) in matrix.tables.iter().enumerate() {
                    table_scores[ti] = sigmoid(matrix.element_logit(
                        &q,
                        table,
                        &self.table_weights,
                        &mut scratch,
                    ));
                    for (ci, col) in matrix.columns[ti].iter().enumerate() {
                        column_scores[ti][ci] = sigmoid(matrix.element_logit(
                            &q,
                            col,
                            &self.column_weights,
                            &mut scratch,
                        ));
                    }
                }
                rank_scores(table_scores, column_scores)
            })
            .collect()
    }

    /// [`CrossEncoder::link_batch`], also reporting the elapsed wall
    /// time of the whole sweep — the hook the batched answer engine's
    /// metrics use to attribute linking cost.
    pub fn link_batch_timed(
        &self,
        questions: &[&str],
        matrix: &SchemaFeatureMatrix,
    ) -> (Vec<LinkedSchema>, std::time::Duration) {
        let start = std::time::Instant::now();
        let linked = self.link_batch(questions, matrix);
        (linked, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::InferenceMode;
    use crate::train::{train, LinkExample, TrainConfig};
    use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, Lang};

    fn schema(n_tables: usize) -> CatalogSchema {
        CatalogSchema {
            db_id: "m".into(),
            tables: (0..n_tables)
                .map(|i| CatalogTable {
                    name: format!("tb_{i}_shared"),
                    desc_en: format!("table number {i} about topic{i} shared words"),
                    desc_cn: format!("table {i}"),
                    columns: (0..9)
                        .map(|j| {
                            CatalogColumn::new(
                                &format!("col{i}_{j}"),
                                ColType::Float,
                                &format!("measure {j} of topic{i} shared"),
                                "m",
                            )
                        })
                        .collect(),
                })
                .collect(),
            foreign_keys: vec![],
        }
    }

    fn trained_model(s: &CatalogSchema) -> CrossEncoder {
        let examples: Vec<LinkExample> = (0..s.tables.len())
            .map(|i| LinkExample {
                question: format!("measure 2 of topic{i} please"),
                gold_tables: vec![s.tables[i].name.clone()],
                gold_columns: vec![(s.tables[i].name.clone(), s.tables[i].columns[2].name.clone())],
                schema_idx: 0,
            })
            .collect();
        train(Lang::En, &[s], &examples, TrainConfig::default())
    }

    fn assert_linked_eq(a: &LinkedSchema, b: &LinkedSchema) {
        assert_eq!(a.tables, b.tables, "table ranking diverged");
        assert_eq!(a.columns, b.columns, "column ranking diverged");
    }

    #[test]
    fn batch_matches_per_question_link_exactly() {
        let s = schema(12);
        let views = SchemaViews::build(&s, Lang::En);
        let model = trained_model(&s);
        let matrix = model.schema_matrix(&views);
        let questions = [
            "measure 3 of topic7",
            "shared words of table number 4",
            "topic1 topic1 topic1",
            "nothing in common at all",
            "",
            "measure 3 of topic7",
        ];
        let batched = model.link_batch(&questions, &matrix);
        assert_eq!(batched.len(), questions.len());
        for (q, linked) in questions.iter().zip(&batched) {
            let serial = model.link(q, &views, InferenceMode::Serial);
            assert_linked_eq(&serial, linked);
            let parallel = model.link(q, &views, InferenceMode::Parallel);
            assert_linked_eq(&parallel, linked);
        }
    }

    #[test]
    fn fresh_model_matrix_ranks_by_index() {
        let s = schema(6);
        let views = SchemaViews::build(&s, Lang::En);
        let model = CrossEncoder::new(Lang::En);
        let matrix = model.schema_matrix(&views);
        let linked = &model.link_batch(&["anything"], &matrix)[0];
        let order: Vec<usize> = linked.tables.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..6).collect::<Vec<_>>(), "ties must break by index");
        for (_, score) in &linked.tables {
            assert!((score - 0.5).abs() < 1e-6, "fresh model must score 0.5");
        }
    }

    #[test]
    fn matrix_counts_elements() {
        let s = schema(5);
        let views = SchemaViews::build(&s, Lang::En);
        let matrix = CrossEncoder::new(Lang::En).schema_matrix(&views);
        assert_eq!(matrix.n_tables(), 5);
        assert_eq!(matrix.n_elements(), 5 + 5 * 9);
    }

    #[test]
    fn empty_batch_is_empty() {
        let s = schema(2);
        let views = SchemaViews::build(&s, Lang::En);
        let model = CrossEncoder::new(Lang::En);
        let matrix = model.schema_matrix(&views);
        assert!(model.link_batch(&[], &matrix).is_empty());
    }
}
