//! Serial and parallel schema-linking inference.
//!
//! The paper's point: serialising a 390-column schema through the encoder
//! one element at a time is slow and overflows context limits; batching
//! per table and scoring tables concurrently is fast. `serial` scores
//! tables one after another; `parallel` fans the per-table work out over
//! crossbeam scoped threads.

use crate::features::QuestionView;
use crate::model::{CrossEncoder, SchemaViews};
use sqlkit::catalog::CatalogSchema;

/// How to run inference over the tables of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// One table after another (the baseline the paper criticises).
    Serial,
    /// All tables scored concurrently in scoped threads.
    Parallel,
}

/// The ranked output of schema linking for one question.
#[derive(Debug, Clone)]
pub struct LinkedSchema {
    /// `(table index, score)` sorted by descending score.
    pub tables: Vec<(usize, f32)>,
    /// Per table: `(column index, score)` sorted by descending score.
    pub columns: Vec<Vec<(usize, f32)>>,
}

impl CrossEncoder {
    /// [`CrossEncoder::link`], also reporting the elapsed wall time — the
    /// hook the evaluation metrics use to attribute linking cost.
    pub fn link_timed(
        &self,
        question: &str,
        views: &SchemaViews,
        mode: InferenceMode,
    ) -> (LinkedSchema, std::time::Duration) {
        let start = std::time::Instant::now();
        let linked = self.link(question, views, mode);
        (linked, start.elapsed())
    }

    /// Scores every table and column of a schema for a question.
    pub fn link(
        &self,
        question: &str,
        views: &SchemaViews,
        mode: InferenceMode,
    ) -> LinkedSchema {
        let q = QuestionView::new(question);
        let n = views.tables.len();
        let mut table_scores = vec![0.0f32; n];
        let mut column_scores: Vec<Vec<f32>> =
            views.columns.iter().map(|c| vec![0.0; c.len()]).collect();
        match mode {
            InferenceMode::Serial => {
                for ti in 0..n {
                    let (ts, cs) = self.score_one_table(&q, views, ti);
                    table_scores[ti] = ts;
                    column_scores[ti] = cs;
                }
            }
            InferenceMode::Parallel => {
                // One logical batch entry per table, processed by a pool of
                // scoped worker threads. Thread start-up costs tens of
                // microseconds, so the pool is sized to keep several
                // tables' worth of scoring per worker.
                let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
                let workers = cores.min(n.div_ceil(8)).max(1);
                let next = std::sync::atomic::AtomicUsize::new(0);
                let results: Vec<std::sync::Mutex<(f32, Vec<f32>)>> =
                    (0..n).map(|_| std::sync::Mutex::new((0.0, Vec::new()))).collect();
                crossbeam::scope(|scope| {
                    for _ in 0..workers.min(n.max(1)) {
                        scope.spawn(|_| loop {
                            let ti = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if ti >= n {
                                break;
                            }
                            let out = self.score_one_table(&q, views, ti);
                            // INVARIANT: one worker claims each `ti` via
                            // the atomic counter, so the lock is never
                            // poisoned by a holder of the same cell.
                            *results[ti].lock().unwrap() = out;
                        });
                    }
                })
                // INVARIANT: a worker panic invalidates the scores; the
                // scope join re-raises it here by design.
                .expect("worker thread panicked");
                for (ti, cell) in results.into_iter().enumerate() {
                    // INVARIANT: the scope ended, so no thread holds any
                    // cell lock and into_inner cannot see poisoning
                    // (a worker panic already propagated above).
                    let (ts, cs) = cell.into_inner().unwrap();
                    table_scores[ti] = ts;
                    column_scores[ti] = cs;
                }
            }
        }
        rank_scores(table_scores, column_scores)
    }

    fn score_one_table(&self, q: &QuestionView, views: &SchemaViews, ti: usize) -> (f32, Vec<f32>) {
        let ts = self.score_table(q, &views.tables[ti]);
        let cs = views.columns[ti].iter().map(|cv| self.score_column(q, cv)).collect();
        (ts, cs)
    }
}

/// Ranks raw per-element scores into a [`LinkedSchema`]: descending
/// score, ties broken by ascending index. Shared by the per-question
/// paths and [`CrossEncoder::link_batch`], so every linking path applies
/// the identical tie-break.
pub(crate) fn rank_scores(
    table_scores: Vec<f32>,
    column_scores: Vec<Vec<f32>>,
) -> LinkedSchema {
    let mut tables: Vec<(usize, f32)> = table_scores.into_iter().enumerate().collect();
    tables.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let columns = column_scores
        .into_iter()
        .map(|cs| {
            let mut v: Vec<(usize, f32)> = cs.into_iter().enumerate().collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        })
        .collect();
    LinkedSchema { tables, columns }
}

impl LinkedSchema {
    /// Projects a schema down to the top `k_tables` tables and, within
    /// each kept table, the top `k_columns` columns (plus FK columns,
    /// which [`CatalogSchema::project`] preserves). This is the concise
    /// prompt input of the paper's Figure 9.
    pub fn project(
        &self,
        schema: &CatalogSchema,
        k_tables: usize,
        k_columns: usize,
    ) -> CatalogSchema {
        let kept_tables: Vec<String> = self
            .tables
            .iter()
            .take(k_tables)
            .map(|(ti, _)| schema.tables[*ti].name.clone())
            .collect();
        let mut kept_columns: Vec<(String, String)> = Vec::new();
        for (ti, _) in self.tables.iter().take(k_tables) {
            let t = &schema.tables[*ti];
            for (ci, _) in self.columns[*ti].iter().take(k_columns) {
                kept_columns.push((t.name.clone(), t.columns[*ci].name.clone()));
            }
        }
        schema.project(&kept_tables, &kept_columns)
    }

    /// The rank (0-based) of a table, by name.
    pub fn table_rank(&self, schema: &CatalogSchema, name: &str) -> Option<usize> {
        let idx = schema.table_index(name)?;
        self.tables.iter().position(|(ti, _)| *ti == idx)
    }

    /// True when every gold table is ranked within the top `k` tables —
    /// the per-example table recall@k event of the paper's Table 7.
    pub fn covers_tables(&self, schema: &CatalogSchema, gold: &[String], k: usize) -> bool {
        gold.iter().all(|g| self.table_rank(schema, g).map(|r| r < k).unwrap_or(false))
    }

    /// True when every gold `(table, column)` is within the top `k`
    /// columns of its own table's ranking.
    pub fn covers_columns(
        &self,
        schema: &CatalogSchema,
        gold: &[(String, String)],
        k: usize,
    ) -> bool {
        gold.iter().all(|(gt, gc)| {
            let Some(ti) = schema.table_index(gt) else { return false };
            let Some(ci) = schema.tables[ti].column_index(gc) else { return false };
            self.columns[ti].iter().take(k).any(|(c, _)| *c == ci)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SchemaViews;
    use sqlkit::catalog::{CatalogColumn, CatalogTable, ColType, Lang};

    fn schema(n_tables: usize) -> CatalogSchema {
        CatalogSchema {
            db_id: "s".into(),
            tables: (0..n_tables)
                .map(|i| CatalogTable {
                    name: format!("t{i}"),
                    desc_en: format!("table number {i} about topic{i}"),
                    desc_cn: format!("table {i}"),
                    columns: (0..12)
                        .map(|j| {
                            CatalogColumn::new(
                                &format!("c{i}_{j}"),
                                ColType::Float,
                                &format!("measure {j} of topic{i}"),
                                "m",
                            )
                        })
                        .collect(),
                })
                .collect(),
            foreign_keys: vec![],
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let s = schema(20);
        let views = SchemaViews::build(&s, Lang::En);
        let m = CrossEncoder::new(Lang::En);
        let a = m.link("measure 3 of topic7", &views, InferenceMode::Serial);
        let b = m.link("measure 3 of topic7", &views, InferenceMode::Parallel);
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.columns, b.columns);
    }

    #[test]
    fn projection_keeps_top_k() {
        let s = schema(10);
        let views = SchemaViews::build(&s, Lang::En);
        let m = CrossEncoder::new(Lang::En);
        let linked = m.link("topic3", &views, InferenceMode::Serial);
        let p = linked.project(&s, 3, 5);
        assert_eq!(p.tables.len(), 3);
        assert!(p.tables.iter().all(|t| t.columns.len() <= 5));
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let s = schema(8);
        let views = SchemaViews::build(&s, Lang::En);
        let m = CrossEncoder::new(Lang::En);
        // Fresh model: every score is 0.5, so ranking must fall back to
        // index order.
        let linked = m.link("anything", &views, InferenceMode::Parallel);
        let order: Vec<usize> = linked.tables.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }
}
