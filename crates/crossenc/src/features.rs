//! Feature extraction for the Cross-Encoder: lexical-overlap features
//! between a question and schema-element descriptions.

use sqlkit::catalog::{CatalogColumn, CatalogTable, Lang};
use textenc::{char_ngrams, tokenize, tokenize_identifier, FeatureHasher, SparseVec};

/// Hash-space size (bits) for the linking models.
pub const FEATURE_BITS: u32 = 16;

/// A pre-tokenised question, computed once per inference/training step.
#[derive(Debug, Clone)]
pub struct QuestionView {
    tokens: Vec<String>,
    trigrams: std::collections::HashSet<String>,
}

impl QuestionView {
    /// Tokenises a question.
    pub fn new(question: &str) -> Self {
        let tokens = tokenize(question);
        let trigrams = tokens.iter().flat_map(|t| char_ngrams(t, 3)).collect();
        QuestionView { tokens, trigrams }
    }

    fn overlap_tokens<'a>(&'a self, desc_tokens: &'a [String]) -> impl Iterator<Item = &'a String> {
        desc_tokens.iter().filter(|t| self.tokens.contains(t))
    }

    /// Character-trigram overlap ratio with a pre-tokenised description.
    fn trigram_overlap(&self, grams: &std::collections::HashSet<String>) -> f32 {
        if grams.is_empty() {
            return 0.0;
        }
        // finlint: ordered — set-membership count, independent of iteration order
        let inter = grams.iter().filter(|g| self.trigrams.contains(*g)).count();
        inter as f32 / grams.len() as f32
    }
}

/// Tokenised description of one schema element, cached per schema.
#[derive(Debug, Clone)]
pub struct ElementView {
    /// Description word tokens (register-specific).
    pub desc_tokens: Vec<String>,
    /// Identifier word parts (`lc_sharestru` → `lc`, `sharestru`).
    pub ident_tokens: Vec<String>,
    /// Character trigrams of the description (cached — feature extraction
    /// runs millions of times during training).
    pub desc_trigrams: std::collections::HashSet<String>,
}

impl ElementView {
    /// Builds a view of a table's own description.
    pub fn of_table(t: &CatalogTable, lang: Lang) -> Self {
        let desc_tokens = tokenize(t.desc(lang));
        let desc_trigrams = desc_tokens.iter().flat_map(|t| char_ngrams(t, 3)).collect();
        ElementView { desc_tokens, ident_tokens: tokenize_identifier(&t.name), desc_trigrams }
    }

    /// Builds a view of a column's description.
    pub fn of_column(c: &CatalogColumn, lang: Lang) -> Self {
        let desc_tokens = tokenize(c.desc(lang));
        let desc_trigrams = desc_tokens.iter().flat_map(|t| char_ngrams(t, 3)).collect();
        ElementView { desc_tokens, ident_tokens: tokenize_identifier(&c.name), desc_trigrams }
    }
}

/// Extracts the feature vector for one (question, element) pair.
///
/// Features: exact description-word overlaps (hashed individually, so the
/// model learns which words are discriminative), identifier-part
/// overlaps, binned trigram-overlap ratio, overlap-count buckets and a
/// bias term.
pub fn pair_features(hasher: &FeatureHasher, q: &QuestionView, e: &ElementView) -> SparseVec {
    let mut feats: Vec<(String, f32)> = Vec::with_capacity(16);
    feats.push(("bias".to_string(), 1.0));
    let mut overlap_count = 0usize;
    for w in q.overlap_tokens(&e.desc_tokens) {
        feats.push((format!("dw={w}"), 1.0));
        overlap_count += 1;
    }
    for w in q.overlap_tokens(&e.ident_tokens) {
        feats.push((format!("iw={w}"), 1.0));
        overlap_count += 1;
    }
    // Coverage of the description by the question.
    let coverage = if e.desc_tokens.is_empty() {
        0.0
    } else {
        q.overlap_tokens(&e.desc_tokens).count() as f32 / e.desc_tokens.len() as f32
    };
    feats.push(("coverage".to_string(), coverage));
    let tri = q.trigram_overlap(&e.desc_trigrams);
    feats.push(("trigram".to_string(), tri));
    // Bucketised overlap count (lets the linear model be non-linear in
    // count).
    let bucket = overlap_count.min(5);
    feats.push((format!("oc={bucket}"), 1.0));
    hasher.hash_weighted(feats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::ColType;

    fn hasher() -> FeatureHasher {
        FeatureHasher::new(FEATURE_BITS)
    }

    fn col(name: &str, desc: &str) -> CatalogColumn {
        CatalogColumn::new(name, ColType::Float, desc, desc)
    }

    #[test]
    fn overlapping_description_scores_more_features() {
        let q = QuestionView::new("What is the unit net value of the fund?");
        let relevant = ElementView::of_column(&col("nav", "unit net value"), Lang::En);
        let irrelevant = ElementView::of_column(&col("xgrq", "record update date"), Lang::En);
        let h = hasher();
        let fr = pair_features(&h, &q, &relevant);
        let fi = pair_features(&h, &q, &irrelevant);
        assert!(fr.nnz() > fi.nnz(), "relevant pair must fire more features");
    }

    #[test]
    fn identifier_parts_contribute() {
        let q = QuestionView::new("show the nav history");
        let e = ElementView::of_column(&col("nav", "unit net value"), Lang::En);
        let h = hasher();
        let f = pair_features(&h, &q, &e);
        // The "iw=nav" feature must be present (weight 1 at its bucket).
        let bucket = h.bucket("iw=nav");
        assert!(f.entries().iter().any(|(i, _)| *i == bucket));
    }

    #[test]
    fn features_are_deterministic() {
        let q = QuestionView::new("average closing price");
        let e = ElementView::of_column(&col("closeprice", "closing price"), Lang::En);
        let h = hasher();
        assert_eq!(pair_features(&h, &q, &e), pair_features(&h, &q, &e));
    }

    #[test]
    fn cn_register_works() {
        let c = CatalogColumn::new("nav", ColType::Float, "unit net value", "单位净值");
        let q = QuestionView::new("基金的单位净值是多少");
        let e = ElementView::of_column(&c, Lang::Cn);
        let f = pair_features(&hasher(), &q, &e);
        assert!(f.nnz() > 2, "CJK chars must overlap: {}", f.nnz());
    }
}
