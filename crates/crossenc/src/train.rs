//! Cross-Encoder training over gold linking labels.

use crate::features::QuestionView;
use crate::model::{CrossEncoder, SchemaViews};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqlkit::catalog::{CatalogSchema, Lang};

/// One training example: a question plus its gold tables/columns within a
/// schema.
#[derive(Debug, Clone)]
pub struct LinkExample {
    pub question: String,
    pub gold_tables: Vec<String>,
    /// `(table, column)` pairs.
    pub gold_columns: Vec<(String, String)>,
    /// Index of the schema this example belongs to (several databases can
    /// be trained jointly, as in the paper's few-shot study).
    pub schema_idx: usize,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f32,
    /// Negatives sampled per positive column (full negatives for tables —
    /// schemas have few tables but hundreds of columns).
    pub column_negatives: usize,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 3, lr: 0.3, column_negatives: 6, seed: 17 }
    }
}

/// Trains a Cross-Encoder from scratch on the given examples.
pub fn train(
    lang: Lang,
    schemas: &[&CatalogSchema],
    examples: &[LinkExample],
    cfg: TrainConfig,
) -> CrossEncoder {
    let mut model = CrossEncoder::new(lang);
    let views: Vec<SchemaViews> = schemas.iter().map(|s| SchemaViews::build(s, lang)).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    for epoch in 0..cfg.epochs {
        let lr = cfg.lr / (1.0 + epoch as f32);
        order.shuffle(&mut rng);
        for &ei in &order {
            let ex = &examples[ei];
            let schema = schemas[ex.schema_idx];
            let sv = &views[ex.schema_idx];
            let q = QuestionView::new(&ex.question);
            // Tables: full pass (few per schema).
            for (ti, t) in schema.tables.iter().enumerate() {
                let label = ex
                    .gold_tables
                    .iter()
                    .any(|g| g.eq_ignore_ascii_case(&t.name)) as i32 as f32;
                model.step_table(&q, &sv.tables[ti], label, lr);
            }
            // Columns: all positives plus sampled negatives.
            let mut negatives: Vec<(usize, usize)> = Vec::new();
            for (ti, t) in schema.tables.iter().enumerate() {
                for (ci, c) in t.columns.iter().enumerate() {
                    let is_gold = ex.gold_columns.iter().any(|(gt, gc)| {
                        gt.eq_ignore_ascii_case(&t.name) && gc.eq_ignore_ascii_case(&c.name)
                    });
                    if is_gold {
                        model.step_column(&q, &sv.columns[ti][ci], 1.0, lr);
                    } else {
                        negatives.push((ti, ci));
                    }
                }
            }
            let n_neg = (ex.gold_columns.len().max(1) * cfg.column_negatives).min(negatives.len());
            for _ in 0..n_neg {
                let (ti, ci) = negatives[rng.gen_range(0..negatives.len())];
                model.step_column(&q, &sv.columns[ti][ci], 0.0, lr);
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, CatalogTable, ColType};

    fn toy_schema() -> CatalogSchema {
        CatalogSchema {
            db_id: "toy".into(),
            tables: vec![
                CatalogTable {
                    name: "nav_table".into(),
                    desc_en: "fund daily net value".into(),
                    desc_cn: "fund daily net value".into(),
                    columns: vec![
                        CatalogColumn::new("nav", ColType::Float, "unit net value", "net value"),
                        CatalogColumn::new("td", ColType::Date, "trading date", "date"),
                    ],
                },
                CatalogTable {
                    name: "mgr_table".into(),
                    desc_en: "fund manager profile".into(),
                    desc_cn: "manager".into(),
                    columns: vec![
                        CatalogColumn::new("mname", ColType::Text, "manager name", "name"),
                        CatalogColumn::new("edu", ColType::Text, "manager education", "education"),
                    ],
                },
            ],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn training_separates_relevant_tables() {
        let schema = toy_schema();
        let examples: Vec<LinkExample> = (0..30)
            .flat_map(|i| {
                [
                    LinkExample {
                        question: format!("what is the unit net value on trading date {i}?"),
                        gold_tables: vec!["nav_table".into()],
                        gold_columns: vec![
                            ("nav_table".into(), "nav".into()),
                            ("nav_table".into(), "td".into()),
                        ],
                        schema_idx: 0,
                    },
                    LinkExample {
                        question: format!("show the manager name and education {i}"),
                        gold_tables: vec!["mgr_table".into()],
                        gold_columns: vec![
                            ("mgr_table".into(), "mname".into()),
                            ("mgr_table".into(), "edu".into()),
                        ],
                        schema_idx: 0,
                    },
                ]
            })
            .collect();
        let model = train(Lang::En, &[&schema], &examples, TrainConfig::default());
        let sv = SchemaViews::build(&schema, Lang::En);
        let q = QuestionView::new("what is the unit net value today?");
        let s_nav = model.score_table(&q, &sv.tables[0]);
        let s_mgr = model.score_table(&q, &sv.tables[1]);
        assert!(s_nav > s_mgr + 0.2, "nav {s_nav} vs mgr {s_mgr}");
        let c_nav = model.score_column(&q, &sv.columns[0][0]);
        let c_edu = model.score_column(&q, &sv.columns[1][1]);
        assert!(c_nav > c_edu, "nav col {c_nav} vs edu col {c_edu}");
    }

    #[test]
    fn training_is_deterministic() {
        let schema = toy_schema();
        let examples = vec![LinkExample {
            question: "unit net value".into(),
            gold_tables: vec!["nav_table".into()],
            gold_columns: vec![("nav_table".into(), "nav".into())],
            schema_idx: 0,
        }];
        let a = train(Lang::En, &[&schema], &examples, TrainConfig::default());
        let b = train(Lang::En, &[&schema], &examples, TrainConfig::default());
        assert_eq!(a.table_weights, b.table_weights);
        assert_eq!(a.column_weights, b.column_weights);
    }
}
