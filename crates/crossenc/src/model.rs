//! The Cross-Encoder model: two logistic scorers (tables, columns) over
//! hashed pair features, plus cached schema element views.

use crate::features::{pair_features, ElementView, QuestionView, FEATURE_BITS};
use sqlkit::catalog::{CatalogSchema, Lang};
use textenc::FeatureHasher;

/// A trained (or fresh) Cross-Encoder.
#[derive(Debug, Clone)]
pub struct CrossEncoder {
    pub(crate) hasher: FeatureHasher,
    pub(crate) table_weights: Vec<f32>,
    pub(crate) column_weights: Vec<f32>,
    pub(crate) lang: Lang,
}

/// Pre-computed views of one schema in one register.
#[derive(Debug, Clone)]
pub struct SchemaViews {
    /// Per-table view.
    pub tables: Vec<ElementView>,
    /// Per-table list of column views.
    pub columns: Vec<Vec<ElementView>>,
}

impl SchemaViews {
    /// Builds the views for a schema.
    pub fn build(schema: &CatalogSchema, lang: Lang) -> Self {
        let tables = schema.tables.iter().map(|t| ElementView::of_table(t, lang)).collect();
        let columns = schema
            .tables
            .iter()
            .map(|t| t.columns.iter().map(|c| ElementView::of_column(c, lang)).collect())
            .collect();
        SchemaViews { tables, columns }
    }
}

/// The logistic link shared by every scoring path — per-question and
/// matrix-batched scores must pass through the very same function to
/// stay bit-identical.
pub(crate) fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl CrossEncoder {
    /// A fresh zero-weight model for the given register.
    pub fn new(lang: Lang) -> Self {
        let hasher = FeatureHasher::new(FEATURE_BITS);
        CrossEncoder {
            hasher,
            table_weights: vec![0.0; hasher.dim()],
            column_weights: vec![0.0; hasher.dim()],
            lang,
        }
    }

    /// The register this model was built for.
    pub fn lang(&self) -> Lang {
        self.lang
    }

    /// Relevance probability of one table for a question.
    pub fn score_table(&self, q: &QuestionView, table_view: &ElementView) -> f32 {
        let f = pair_features(&self.hasher, q, table_view);
        sigmoid(f.dot(&self.table_weights))
    }

    /// Relevance probability of one column for a question.
    pub fn score_column(&self, q: &QuestionView, col_view: &ElementView) -> f32 {
        let f = pair_features(&self.hasher, q, col_view);
        sigmoid(f.dot(&self.column_weights))
    }

    /// One SGD step on a (question, table) sample. Returns the loss.
    pub(crate) fn step_table(
        &mut self,
        q: &QuestionView,
        view: &ElementView,
        label: f32,
        lr: f32,
    ) -> f32 {
        let f = pair_features(&self.hasher, q, view);
        let p = sigmoid(f.dot(&self.table_weights));
        let grad = p - label;
        for (i, w) in f.entries() {
            self.table_weights[*i as usize] -= lr * grad * w;
        }
        -(label * p.max(1e-7).ln() + (1.0 - label) * (1.0 - p).max(1e-7).ln())
    }

    /// One SGD step on a (question, column) sample. Returns the loss.
    pub(crate) fn step_column(
        &mut self,
        q: &QuestionView,
        view: &ElementView,
        label: f32,
        lr: f32,
    ) -> f32 {
        let f = pair_features(&self.hasher, q, view);
        let p = sigmoid(f.dot(&self.column_weights));
        let grad = p - label;
        for (i, w) in f.entries() {
            self.column_weights[*i as usize] -= lr * grad * w;
        }
        -(label * p.max(1e-7).ln() + (1.0 - label) * (1.0 - p).max(1e-7).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, ColType};

    #[test]
    fn fresh_model_scores_half() {
        let m = CrossEncoder::new(Lang::En);
        let q = QuestionView::new("anything");
        let v = ElementView::of_column(
            &CatalogColumn::new("x", ColType::Int, "something", "something"),
            Lang::En,
        );
        assert!((m.score_table(&q, &v) - 0.5).abs() < 1e-6);
        assert!((m.score_column(&q, &v) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sgd_moves_score_toward_label() {
        let mut m = CrossEncoder::new(Lang::En);
        let q = QuestionView::new("unit net value of the fund");
        let v = ElementView::of_column(
            &CatalogColumn::new("nav", ColType::Float, "unit net value", "单位净值"),
            Lang::En,
        );
        let before = m.score_column(&q, &v);
        for _ in 0..50 {
            m.step_column(&q, &v, 1.0, 0.5);
        }
        let after = m.score_column(&q, &v);
        assert!(after > before + 0.3, "score must rise: {before} → {after}");
    }
}
