//! Property tests over the execution engine: relational invariants that
//! must hold for any generated data.

use proptest::prelude::*;
use sqlengine::{run_sql, Database, Value};
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, ForeignKey};

fn schema() -> CatalogSchema {
    CatalogSchema {
        db_id: "prop".into(),
        tables: vec![
            CatalogTable {
                name: "m".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("id", ColType::Int, "", ""),
                    CatalogColumn::new("grp", ColType::Text, "", ""),
                    CatalogColumn::new("val", ColType::Float, "", ""),
                ],
            },
            CatalogTable {
                name: "f".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("mid", ColType::Int, "", ""),
                    CatalogColumn::new("x", ColType::Float, "", ""),
                ],
            },
        ],
        foreign_keys: vec![ForeignKey {
            from_table: "f".into(),
            from_column: "mid".into(),
            to_table: "m".into(),
            to_column: "id".into(),
        }],
    }
}

fn database(
    masters: &[(i64, String, f64)],
    facts: &[(usize, f64)],
) -> Database {
    let mut db = Database::new(schema());
    for (id, grp, val) in masters {
        db.insert("m", vec![Value::Int(*id), Value::from(grp.clone()), Value::Float(*val)])
            .unwrap();
    }
    for (mi, x) in facts {
        let mid = masters[mi % masters.len().max(1)].0;
        db.insert("f", vec![Value::Int(mid), Value::Float(*x)]).unwrap();
    }
    db
}

fn masters() -> impl Strategy<Value = Vec<(i64, String, f64)>> {
    proptest::collection::vec(
        (0i64..40, "[a-c]", -50.0f64..50.0),
        1..25,
    )
}

fn facts() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..24, -50.0f64..50.0), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A WHERE filter returns a subset of the unfiltered rows.
    #[test]
    fn filter_returns_subset(ms in masters(), threshold in -60.0f64..60.0) {
        let db = database(&ms, &[]);
        let all = run_sql(&db, "SELECT id FROM m").unwrap();
        let filtered = run_sql(&db, &format!("SELECT id FROM m WHERE val > {threshold}")).unwrap();
        prop_assert!(filtered.len() <= all.len());
        for row in &filtered.rows {
            prop_assert!(all.rows.contains(row));
        }
    }

    /// Complementary filters partition the table (no NULLs present).
    #[test]
    fn filters_partition(ms in masters(), threshold in -60.0f64..60.0) {
        let db = database(&ms, &[]);
        let all = run_sql(&db, "SELECT COUNT(*) FROM m").unwrap();
        let hi = run_sql(&db, &format!("SELECT COUNT(*) FROM m WHERE val > {threshold}")).unwrap();
        let lo = run_sql(&db, &format!("SELECT COUNT(*) FROM m WHERE val <= {threshold}")).unwrap();
        let (a, h, l) = (&all.rows[0][0], &hi.rows[0][0], &lo.rows[0][0]);
        if let (Value::Int(a), Value::Int(h), Value::Int(l)) = (a, h, l) {
            prop_assert_eq!(*a, h + l);
        } else {
            prop_assert!(false, "COUNT must be Int");
        }
    }

    /// LIMIT k yields exactly min(k, n) rows and a prefix of the ordered
    /// result.
    #[test]
    fn limit_is_prefix(ms in masters(), k in 1u64..10) {
        let db = database(&ms, &[]);
        let full = run_sql(&db, "SELECT id FROM m ORDER BY val DESC, id ASC").unwrap();
        let limited =
            run_sql(&db, &format!("SELECT id FROM m ORDER BY val DESC, id ASC LIMIT {k}")).unwrap();
        prop_assert_eq!(limited.len(), full.len().min(k as usize));
        prop_assert_eq!(&limited.rows[..], &full.rows[..limited.len()]);
    }

    /// DISTINCT never increases cardinality and removes all duplicates.
    #[test]
    fn distinct_dedups(ms in masters()) {
        let db = database(&ms, &[]);
        let plain = run_sql(&db, "SELECT grp FROM m").unwrap();
        let distinct = run_sql(&db, "SELECT DISTINCT grp FROM m").unwrap();
        prop_assert!(distinct.len() <= plain.len());
        let mut seen = std::collections::HashSet::new();
        for row in &distinct.rows {
            prop_assert!(seen.insert(format!("{}", row[0])), "duplicate in DISTINCT");
        }
    }

    /// GROUP BY counts sum to the table cardinality.
    #[test]
    fn group_counts_sum(ms in masters()) {
        let db = database(&ms, &[]);
        let groups = run_sql(&db, "SELECT grp, COUNT(*) FROM m GROUP BY grp").unwrap();
        let total: i64 = groups
            .rows
            .iter()
            .map(|r| if let Value::Int(c) = r[1] { c } else { 0 })
            .sum();
        prop_assert_eq!(total, ms.len() as i64);
    }

    /// An FK inner join yields exactly one row per fact row (every fact
    /// references an existing master and master ids may repeat).
    #[test]
    fn fk_join_cardinality(ms in masters(), fs in facts()) {
        // Deduplicate master ids so the join is key-unique.
        let mut seen = std::collections::HashSet::new();
        let ms: Vec<_> = ms.into_iter().filter(|(id, _, _)| seen.insert(*id)).collect();
        let db = database(&ms, &fs);
        let joined = run_sql(
            &db,
            "SELECT f.x FROM f JOIN m ON f.mid = m.id",
        )
        .unwrap();
        prop_assert_eq!(joined.len(), fs.len());
    }

    /// Aggregates agree with manual computation.
    #[test]
    fn sum_avg_agree(ms in masters()) {
        let db = database(&ms, &[]);
        let rs = run_sql(&db, "SELECT SUM(val), AVG(val), MIN(val), MAX(val) FROM m").unwrap();
        let vals: Vec<f64> = ms.iter().map(|(_, _, v)| *v).collect();
        let sum: f64 = vals.iter().sum();
        let expect_avg = sum / vals.len() as f64;
        let got_sum = rs.rows[0][0].as_f64().unwrap();
        let got_avg = rs.rows[0][1].as_f64().unwrap();
        prop_assert!((got_sum - sum).abs() < 1e-6);
        prop_assert!((got_avg - expect_avg).abs() < 1e-6);
        let got_min = rs.rows[0][2].as_f64().unwrap();
        let got_max = rs.rows[0][3].as_f64().unwrap();
        prop_assert!((got_min - vals.iter().cloned().fold(f64::INFINITY, f64::min)).abs() < 1e-9);
        prop_assert!((got_max - vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).abs() < 1e-9);
    }

    /// UNION is idempotent: `q UNION q` has the cardinality of
    /// `SELECT DISTINCT`.
    #[test]
    fn union_idempotent(ms in masters()) {
        let db = database(&ms, &[]);
        let distinct = run_sql(&db, "SELECT DISTINCT grp FROM m").unwrap();
        let unioned = run_sql(&db, "SELECT grp FROM m UNION SELECT grp FROM m").unwrap();
        prop_assert_eq!(distinct.len(), unioned.len());
    }

    /// The hash-join fast path agrees with a comma-join + WHERE, which
    /// takes the nested-loop path.
    #[test]
    fn hash_join_equals_nested(ms in masters(), fs in facts()) {
        let db = database(&ms, &fs);
        let hash = run_sql(&db, "SELECT f.x, m.grp FROM f JOIN m ON f.mid = m.id").unwrap();
        let nested = run_sql(&db, "SELECT f.x, m.grp FROM f, m WHERE f.mid = m.id").unwrap();
        prop_assert!(sqlengine::results_match(&hash, &nested, false));
    }
}
