//! End-to-end executor tests over a small financial database.

use sqlengine::{execution_accuracy, run_sql, Database, Value};
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, ForeignKey};

/// A miniature fund database: `mf_fundinfo` (master) and `mf_fundnav`
/// (daily net asset values), plus `mf_manager`.
fn fund_db() -> Database {
    let catalog = CatalogSchema {
        db_id: "minifund".into(),
        tables: vec![
            CatalogTable {
                name: "mf_fundinfo".into(),
                desc_en: "fund master".into(),
                desc_cn: "fund".into(),
                columns: vec![
                    CatalogColumn::new("fcode", ColType::Int, "fund code", "code"),
                    CatalogColumn::new("fname", ColType::Text, "fund name", "name"),
                    CatalogColumn::new("ftype", ColType::Text, "fund type", "type"),
                    CatalogColumn::new("mgrid", ColType::Int, "manager id", "mgr"),
                ],
            },
            CatalogTable {
                name: "mf_fundnav".into(),
                desc_en: "daily NAV".into(),
                desc_cn: "nav".into(),
                columns: vec![
                    CatalogColumn::new("fcode", ColType::Int, "fund code", "code"),
                    CatalogColumn::new("tradingday", ColType::Date, "trading day", "day"),
                    CatalogColumn::new("nav", ColType::Float, "net asset value", "nav"),
                ],
            },
            CatalogTable {
                name: "mf_manager".into(),
                desc_en: "managers".into(),
                desc_cn: "mgr".into(),
                columns: vec![
                    CatalogColumn::new("mgrid", ColType::Int, "manager id", "id"),
                    CatalogColumn::new("mname", ColType::Text, "manager name", "name"),
                ],
            },
        ],
        foreign_keys: vec![
            ForeignKey {
                from_table: "mf_fundnav".into(),
                from_column: "fcode".into(),
                to_table: "mf_fundinfo".into(),
                to_column: "fcode".into(),
            },
            ForeignKey {
                from_table: "mf_fundinfo".into(),
                from_column: "mgrid".into(),
                to_table: "mf_manager".into(),
                to_column: "mgrid".into(),
            },
        ],
    };
    let mut db = Database::new(catalog);
    let funds = [
        (1, "Alpha Growth", "stock", 10),
        (2, "Beta Bond", "bond", 10),
        (3, "Gamma Mixed", "mixed", 11),
        (4, "Delta Stock", "stock", 12),
    ];
    for (c, n, t, m) in funds {
        db.insert(
            "mf_fundinfo",
            vec![Value::Int(c), Value::from(n), Value::from(t), Value::Int(m)],
        )
        .unwrap();
    }
    let navs = [
        (1, "2022-01-01", 1.00),
        (1, "2022-01-02", 1.10),
        (1, "2022-01-03", 1.21),
        (2, "2022-01-01", 1.00),
        (2, "2022-01-02", 0.99),
        (3, "2022-01-01", 2.00),
        (3, "2022-01-03", 2.10),
        (4, "2022-01-02", 0.80),
    ];
    for (c, d, v) in navs {
        db.insert("mf_fundnav", vec![Value::Int(c), Value::from(d), Value::Float(v)]).unwrap();
    }
    for (i, n) in [(10, "Li Wei"), (11, "Zhang Min"), (12, "Wang Fang")] {
        db.insert("mf_manager", vec![Value::Int(i), Value::from(n)]).unwrap();
    }
    db
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    run_sql(db, sql).unwrap_or_else(|e| panic!("query failed: {sql}: {e}")).rows
}

#[test]
fn simple_projection_and_filter() {
    let db = fund_db();
    let r = rows(&db, "SELECT fname FROM mf_fundinfo WHERE ftype = 'stock'");
    assert_eq!(r.len(), 2);
    assert!(r.contains(&vec![Value::from("Alpha Growth")]));
    assert!(r.contains(&vec![Value::from("Delta Stock")]));
}

#[test]
fn wildcard_select() {
    let db = fund_db();
    let rs = run_sql(&db, "SELECT * FROM mf_manager").unwrap();
    assert_eq!(rs.columns, vec!["mgrid", "mname"]);
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn qualified_wildcard() {
    let db = fund_db();
    let rs = run_sql(
        &db,
        "SELECT t1.* FROM mf_fundinfo t1 JOIN mf_fundnav t2 ON t1.fcode = t2.fcode WHERE t2.nav > 2.0",
    )
    .unwrap();
    assert_eq!(rs.columns.len(), 4);
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][1], Value::from("Gamma Mixed"));
}

#[test]
fn inner_join_via_hash_path() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT t1.fname, t2.nav FROM mf_fundinfo AS t1 JOIN mf_fundnav AS t2 ON t1.fcode = t2.fcode WHERE t2.tradingday = '2022-01-02'",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn three_way_join() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT DISTINCT m.mname FROM mf_fundinfo f JOIN mf_fundnav n ON f.fcode = n.fcode JOIN mf_manager m ON f.mgrid = m.mgrid WHERE n.nav > 1.5",
    );
    assert_eq!(r, vec![vec![Value::from("Zhang Min")]]);
}

#[test]
fn left_join_pads_nulls() {
    let db = fund_db();
    // Fund 4 has only one NAV; all funds stay present with a LEFT JOIN on a
    // date filter pushed into the ON clause.
    let r = rows(
        &db,
        "SELECT f.fcode, n.nav FROM mf_fundinfo f LEFT JOIN mf_fundnav n ON f.fcode = n.fcode AND n.tradingday = '2022-01-03'",
    );
    assert_eq!(r.len(), 4);
    let fund2 = r.iter().find(|row| row[0] == Value::Int(2)).unwrap();
    assert!(fund2[1].is_null());
}

#[test]
fn comma_join_with_where() {
    let db = fund_db();
    let a = rows(
        &db,
        "SELECT f.fname FROM mf_fundinfo f, mf_manager m WHERE f.mgrid = m.mgrid AND m.mname = 'Li Wei'",
    );
    assert_eq!(a.len(), 2);
}

#[test]
fn group_by_with_having_and_order() {
    let db = fund_db();
    let rs = run_sql(
        &db,
        "SELECT fcode, COUNT(*) AS cnt FROM mf_fundnav GROUP BY fcode HAVING COUNT(*) >= 2 ORDER BY cnt DESC, fcode ASC",
    )
    .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1), Value::Int(3)],
            vec![Value::Int(2), Value::Int(2)],
            vec![Value::Int(3), Value::Int(2)],
        ]
    );
}

#[test]
fn aggregates_without_group_by() {
    let db = fund_db();
    let r = rows(&db, "SELECT COUNT(*), AVG(nav), MAX(nav), MIN(tradingday) FROM mf_fundnav");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Int(8));
    assert_eq!(r[0][2], Value::Float(2.10));
    assert_eq!(r[0][3], Value::from("2022-01-01"));
}

#[test]
fn count_distinct() {
    let db = fund_db();
    let r = rows(&db, "SELECT COUNT(DISTINCT fcode) FROM mf_fundnav");
    assert_eq!(r[0][0], Value::Int(4));
}

#[test]
fn aggregate_over_empty_input_yields_one_row() {
    let db = fund_db();
    let r = rows(&db, "SELECT COUNT(*) FROM mf_fundnav WHERE nav > 99");
    assert_eq!(r, vec![vec![Value::Int(0)]]);
    let r = rows(&db, "SELECT SUM(nav) FROM mf_fundnav WHERE nav > 99");
    assert_eq!(r, vec![vec![Value::Null]]);
}

#[test]
fn group_by_over_empty_input_yields_no_rows() {
    let db = fund_db();
    let r = rows(&db, "SELECT fcode, COUNT(*) FROM mf_fundnav WHERE nav > 99 GROUP BY fcode");
    assert!(r.is_empty());
}

#[test]
fn order_by_limit_offset() {
    let db = fund_db();
    let r = rows(&db, "SELECT nav FROM mf_fundnav ORDER BY nav DESC LIMIT 2");
    assert_eq!(r, vec![vec![Value::Float(2.10)], vec![Value::Float(2.00)]]);
    let r = rows(&db, "SELECT nav FROM mf_fundnav ORDER BY nav DESC LIMIT 2 OFFSET 1");
    assert_eq!(r, vec![vec![Value::Float(2.00)], vec![Value::Float(1.21)]]);
}

#[test]
fn order_by_alias_and_position() {
    let db = fund_db();
    let a = rows(&db, "SELECT fname AS n FROM mf_fundinfo ORDER BY n ASC LIMIT 1");
    assert_eq!(a, vec![vec![Value::from("Alpha Growth")]]);
    let b = rows(&db, "SELECT fname FROM mf_fundinfo ORDER BY 1 DESC LIMIT 1");
    assert_eq!(b, vec![vec![Value::from("Gamma Mixed")]]);
}

#[test]
fn order_by_unprojected_column() {
    let db = fund_db();
    let r = rows(&db, "SELECT fname FROM mf_fundinfo ORDER BY fcode DESC LIMIT 1");
    assert_eq!(r, vec![vec![Value::from("Delta Stock")]]);
}

#[test]
fn scalar_subquery_comparison() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT DISTINCT fcode FROM mf_fundnav WHERE nav > (SELECT AVG(nav) FROM mf_fundnav)",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Int(3));
}

#[test]
fn in_subquery() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT fname FROM mf_fundinfo WHERE fcode IN (SELECT fcode FROM mf_fundnav WHERE nav < 1.0)",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn not_in_subquery() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT fname FROM mf_fundinfo WHERE fcode NOT IN (SELECT fcode FROM mf_fundnav WHERE nav < 1.0)",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn correlated_exists() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT fname FROM mf_fundinfo f WHERE EXISTS (SELECT 1 FROM mf_fundnav n WHERE n.fcode = f.fcode AND n.nav > 2.0)",
    );
    assert_eq!(r, vec![vec![Value::from("Gamma Mixed")]]);
}

#[test]
fn union_dedup_and_union_all() {
    let db = fund_db();
    let u = rows(&db, "SELECT ftype FROM mf_fundinfo UNION SELECT ftype FROM mf_fundinfo");
    assert_eq!(u.len(), 3);
    let ua = rows(&db, "SELECT ftype FROM mf_fundinfo UNION ALL SELECT ftype FROM mf_fundinfo");
    assert_eq!(ua.len(), 8);
}

#[test]
fn intersect_and_except() {
    let db = fund_db();
    let i = rows(
        &db,
        "SELECT fcode FROM mf_fundinfo INTERSECT SELECT fcode FROM mf_fundnav WHERE nav > 1.5",
    );
    assert_eq!(i, vec![vec![Value::Int(3)]]);
    let e = rows(
        &db,
        "SELECT fcode FROM mf_fundinfo EXCEPT SELECT fcode FROM mf_fundnav WHERE tradingday = '2022-01-01'",
    );
    assert_eq!(e.len(), 1);
    assert_eq!(e[0][0], Value::Int(4));
}

#[test]
fn set_op_order_by_column_name() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT fcode FROM mf_fundinfo UNION SELECT fcode FROM mf_fundnav ORDER BY fcode DESC LIMIT 1",
    );
    assert_eq!(r, vec![vec![Value::Int(4)]]);
}

#[test]
fn between_and_like() {
    let db = fund_db();
    let r = rows(&db, "SELECT fname FROM mf_fundinfo WHERE fname LIKE '%Growth%'");
    assert_eq!(r.len(), 1);
    let r = rows(&db, "SELECT COUNT(*) FROM mf_fundnav WHERE nav BETWEEN 1.0 AND 1.5");
    assert_eq!(r[0][0], Value::Int(4));
}

#[test]
fn arithmetic_in_projection() {
    let db = fund_db();
    let r = rows(&db, "SELECT nav * 100 FROM mf_fundnav WHERE fcode = 4");
    assert_eq!(r, vec![vec![Value::Float(80.0)]]);
}

#[test]
fn case_expression() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT fname, CASE WHEN ftype = 'stock' THEN 'equity' ELSE 'other' END FROM mf_fundinfo WHERE fcode = 1",
    );
    assert_eq!(r[0][1], Value::from("equity"));
}

#[test]
fn ambiguous_bare_column_is_an_error() {
    let db = fund_db();
    let err = run_sql(
        &db,
        "SELECT fcode FROM mf_fundinfo JOIN mf_fundnav ON mf_fundinfo.fcode = mf_fundnav.fcode",
    )
    .unwrap_err();
    assert!(matches!(err, sqlengine::ExecError::AmbiguousColumn(_)), "{err:?}");
}

#[test]
fn unknown_column_and_table_errors() {
    let db = fund_db();
    assert!(run_sql(&db, "SELECT ghost FROM mf_fundinfo").is_err());
    assert!(run_sql(&db, "SELECT 1 FROM ghost_table").is_err());
    assert!(run_sql(&db, "SELECT mf_fundnav.ghost FROM mf_fundnav").is_err());
}

#[test]
fn dangling_join_is_an_error() {
    let db = fund_db();
    let err = run_sql(&db, "SELECT f.fname FROM mf_fundinfo f JOIN mf_fundnav n ON").unwrap_err();
    assert!(matches!(err, sqlengine::ExecError::DanglingJoin(_)), "{err:?}");
}

#[test]
fn null_semantics_in_where() {
    let db = fund_db();
    // NULL nav from a LEFT JOIN never passes a comparison filter.
    let r = rows(
        &db,
        "SELECT f.fcode FROM mf_fundinfo f LEFT JOIN mf_fundnav n ON f.fcode = n.fcode AND n.tradingday = '2022-01-03' WHERE n.nav > 0",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn is_null_predicate() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT f.fcode FROM mf_fundinfo f LEFT JOIN mf_fundnav n ON f.fcode = n.fcode AND n.tradingday = '2022-01-03' WHERE n.nav IS NULL ORDER BY f.fcode ASC",
    );
    assert_eq!(r, vec![vec![Value::Int(2)], vec![Value::Int(4)]]);
}

#[test]
fn select_without_from() {
    let db = fund_db();
    assert_eq!(rows(&db, "SELECT 1 + 2 * 3"), vec![vec![Value::Int(7)]]);
}

#[test]
fn execution_accuracy_semantics() {
    let db = fund_db();
    // Same result, different SQL shape → EX counts it correct.
    assert!(execution_accuracy(
        &db,
        "SELECT fname FROM mf_fundinfo WHERE ftype = 'stock'",
        "SELECT fname FROM mf_fundinfo WHERE ftype LIKE 'stock'",
    ));
    // Different values → wrong.
    assert!(!execution_accuracy(
        &db,
        "SELECT fname FROM mf_fundinfo WHERE ftype = 'bond'",
        "SELECT fname FROM mf_fundinfo WHERE ftype = 'stock'",
    ));
    // Unexecutable prediction → wrong.
    assert!(!execution_accuracy(
        &db,
        "SELECT ghost FROM mf_fundinfo",
        "SELECT fname FROM mf_fundinfo",
    ));
    // Gold has ORDER BY → row order matters.
    assert!(!execution_accuracy(
        &db,
        "SELECT fname FROM mf_fundinfo ORDER BY fcode DESC",
        "SELECT fname FROM mf_fundinfo ORDER BY fcode ASC",
    ));
    assert!(execution_accuracy(
        &db,
        "SELECT fname FROM mf_fundinfo ORDER BY fcode",
        "SELECT fname FROM mf_fundinfo ORDER BY fcode ASC",
    ));
}

#[test]
fn right_join_keeps_unmatched_right_rows() {
    let db = fund_db();
    let r = rows(
        &db,
        "SELECT f.fname, m.mname FROM mf_fundinfo f RIGHT JOIN mf_manager m ON f.mgrid = m.mgrid AND f.ftype = 'stock'",
    );
    // Managers 11 (no stock funds) should appear with NULL fund names.
    assert!(r.iter().any(|row| row[0].is_null() && row[1] == Value::from("Zhang Min")));
}

#[test]
fn distinct_dedups() {
    let db = fund_db();
    let r = rows(&db, "SELECT DISTINCT ftype FROM mf_fundinfo");
    assert_eq!(r.len(), 3);
}

#[test]
fn group_by_expression_key() {
    let db = fund_db();
    // Group by a computed key.
    let r = rows(
        &db,
        "SELECT COUNT(*) FROM mf_fundnav GROUP BY fcode % 2 ORDER BY 1 ASC",
    );
    assert_eq!(r, vec![vec![Value::Int(3)], vec![Value::Int(5)]]);
}

#[test]
fn duplicate_alias_is_an_error() {
    let db = fund_db();
    assert!(run_sql(
        &db,
        "SELECT t.fcode FROM mf_fundinfo t JOIN mf_fundnav t ON t.fcode = t.fcode"
    )
    .is_err());
}
