//! Fault-injection and replay tests for the live append path: torn and
//! truncated change-log tails are detected with no partial row applied,
//! replay is idempotent, and FK-violating appends are rejected atomically.

use sqlengine::{ChangeLog, Database, ExecError, Value, WalError};
use sqlkit::catalog::{CatalogColumn, CatalogSchema, CatalogTable, ColType, ForeignKey};

/// A two-table schema with an FK: nav rows must reference a fund.
fn catalog() -> CatalogSchema {
    CatalogSchema {
        db_id: "t".into(),
        tables: vec![
            CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("fid", ColType::Int, "", ""),
                    CatalogColumn::new("nm", ColType::Text, "", ""),
                ],
            },
            CatalogTable {
                name: "nav".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("fid", ColType::Int, "", ""),
                    CatalogColumn::new("px", ColType::Float, "", ""),
                    CatalogColumn::new("dt", ColType::Date, "", ""),
                ],
            },
        ],
        foreign_keys: vec![ForeignKey {
            from_table: "nav".into(),
            from_column: "fid".into(),
            to_table: "fund".into(),
            to_column: "fid".into(),
        }],
    }
}

/// A base snapshot: two funds at epoch 0 via the unlogged insert path.
fn base() -> Database {
    let mut db = Database::new(catalog());
    db.insert("fund", vec![Value::Int(1), Value::from("Alpha")]).unwrap();
    db.insert("fund", vec![Value::Int(2), Value::from("Beta")]).unwrap();
    assert_eq!(db.epoch().0, 0);
    assert!(db.change_log().is_empty());
    db
}

fn nav_row(fid: i64, px: f64, dt: &str) -> Vec<Value> {
    vec![Value::Int(fid), Value::Float(px), Value::from(dt)]
}

#[test]
fn append_logs_and_bumps_epoch() {
    let mut db = base();
    let e1 = db.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    assert_eq!(e1.0, 1);
    let e2 = db
        .append_rows("nav", vec![nav_row(2, 0.9, "2022-01-03"), nav_row(1, 1.6, "2022-01-04")])
        .unwrap();
    assert_eq!(e2.0, 2);
    assert_eq!(db.epoch(), e2);
    assert_eq!(db.change_log().len(), 2);
    assert_eq!(db.change_log().records()[1].rows.len(), 2);
    assert_eq!(db.table("nav").unwrap().len(), 3);
}

#[test]
fn fk_violation_is_rejected_atomically() {
    let mut db = base();
    // Second row references fund 99, which doesn't exist: the whole
    // batch must be rejected — including the valid first row.
    let err = db
        .append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03"), nav_row(99, 2.0, "2022-01-03")])
        .unwrap_err();
    assert!(matches!(err, ExecError::ForeignKey(_)), "got {err:?}");
    assert_eq!(db.table("nav").unwrap().len(), 0, "no partial row applied");
    assert_eq!(db.epoch().0, 0, "epoch unmoved");
    assert!(db.change_log().is_empty(), "nothing logged");
}

#[test]
fn null_fk_values_are_allowed() {
    let mut db = base();
    db.append_rows("nav", vec![vec![Value::Null, Value::Float(1.0), Value::from("2022-01-03")]])
        .unwrap();
    assert_eq!(db.epoch().0, 1);
}

#[test]
fn fk_match_coerces_int_and_float() {
    // A Float FK column referencing an Int key: Int(1) stored vs
    // Float(1.0) appended must match numerically, mirroring the
    // executor's join comparison.
    let mut schema = catalog();
    schema.tables[1].columns[0] = CatalogColumn::new("fid", ColType::Float, "", "");
    let mut db = Database::new(schema);
    db.insert("fund", vec![Value::Int(1), Value::from("Alpha")]).unwrap();
    db.append_rows("nav", vec![vec![Value::Float(1.0), Value::Float(1.0), Value::Null]])
        .unwrap();
    assert_eq!(db.epoch().0, 1);
    let err = db
        .append_rows("nav", vec![vec![Value::Float(7.5), Value::Float(1.0), Value::Null]])
        .unwrap_err();
    assert!(matches!(err, ExecError::ForeignKey(_)));
}

#[test]
fn batched_changes_may_reference_earlier_changes_in_the_batch() {
    let mut db = base();
    // A new fund and its first tick ride one atomic batch.
    let epoch = db
        .apply_changes(vec![
            ("fund".into(), vec![vec![Value::Int(3), Value::from("Gamma")]]),
            ("nav".into(), vec![nav_row(3, 10.0, "2022-01-03")]),
        ])
        .unwrap();
    assert_eq!(epoch.0, 2, "one epoch bump per change record");
    assert_eq!(db.change_log().len(), 2);

    // Reversed order: the tick's parent is not yet visible (stored or
    // pending-earlier), so the batch is rejected whole.
    let err = db
        .apply_changes(vec![
            ("nav".into(), vec![nav_row(4, 10.0, "2022-01-03")]),
            ("fund".into(), vec![vec![Value::Int(4), Value::from("Delta")]]),
        ])
        .unwrap_err();
    assert!(matches!(err, ExecError::ForeignKey(_)));
    assert_eq!(db.epoch().0, 2);
    assert_eq!(db.table("fund").unwrap().len(), 3);
}

#[test]
fn type_violation_in_batch_rejects_the_whole_batch() {
    let mut db = base();
    let err = db
        .apply_changes(vec![
            ("nav".into(), vec![nav_row(1, 1.5, "2022-01-03")]),
            ("nav".into(), vec![vec![Value::from("oops"), Value::Float(1.0), Value::Null]]),
        ])
        .unwrap_err();
    assert!(matches!(err, ExecError::Type(_)));
    assert_eq!(db.table("nav").unwrap().len(), 0);
    assert_eq!(db.epoch().0, 0);
}

#[test]
fn unknown_table_rejects_the_whole_batch() {
    let mut db = base();
    let err = db
        .apply_changes(vec![
            ("nav".into(), vec![nav_row(1, 1.5, "2022-01-03")]),
            ("ghost".into(), vec![vec![Value::Int(1)]]),
        ])
        .unwrap_err();
    assert!(matches!(err, ExecError::UnknownTable(_)));
    assert_eq!(db.table("nav").unwrap().len(), 0);
}

#[test]
fn table_name_is_canonicalised_in_the_log() {
    let mut db = base();
    db.append_rows("NAV", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    assert_eq!(db.change_log().records()[0].table, "nav");
}

/// Replaying a live database's log onto an equal base snapshot must
/// reproduce rows, epoch, and log exactly.
#[test]
fn replay_reconstructs_the_live_database() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.apply_changes(vec![
        ("fund".into(), vec![vec![Value::Int(3), Value::from("Gamma")]]),
        ("nav".into(), vec![nav_row(3, 10.0, "2022-01-03")]),
    ])
    .unwrap();

    let mut cold = base();
    let epoch = cold.replay(live.change_log()).unwrap();
    assert_eq!(epoch, live.epoch());
    assert_eq!(cold.change_log(), live.change_log());
    for (a, b) in cold.tables().zip(live.tables()) {
        assert_eq!(a.rows, b.rows, "table {}", a.def.name);
    }
}

#[test]
fn replay_is_idempotent() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.append_rows("nav", vec![nav_row(2, 0.9, "2022-01-03")]).unwrap();

    let mut cold = base();
    cold.replay(live.change_log()).unwrap();
    let rows_before = cold.table("nav").unwrap().len();
    // Replaying the same log again applies nothing.
    let epoch = cold.replay(live.change_log()).unwrap();
    assert_eq!(epoch, live.epoch());
    assert_eq!(cold.table("nav").unwrap().len(), rows_before);
    assert_eq!(cold.change_log().len(), 2);

    // Replaying onto a database mid-history applies only the tail.
    let mut partial = base();
    partial
        .append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")])
        .unwrap();
    partial.replay(live.change_log()).unwrap();
    assert_eq!(partial.epoch(), live.epoch());
    assert_eq!(partial.table("nav").unwrap().len(), 2);
}

#[test]
fn replay_rejects_a_sequence_gap() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.append_rows("nav", vec![nav_row(2, 0.9, "2022-01-03")]).unwrap();

    // A fresh base replaying only the tail record (seq 2) has a gap.
    let mut cold = base();
    let tail = &live.change_log().records()[1];
    let err = cold.replay_record(tail).unwrap_err();
    assert!(matches!(err, ExecError::ChangeLog(_)), "got {err:?}");
    assert_eq!(cold.epoch().0, 0);
    assert_eq!(cold.table("nav").unwrap().len(), 0);
}

/// End-to-end torn-tail drill: serialise, truncate mid-frame, recover
/// the valid prefix, replay it — the error is surfaced, replay stops at
/// the last complete record, and no partial row is applied.
#[test]
fn torn_snapshot_replays_only_the_complete_prefix() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.append_rows("nav", vec![nav_row(2, 0.9, "2022-01-04")]).unwrap();
    live.append_rows("nav", vec![nav_row(1, 1.7, "2022-01-05")]).unwrap();

    let bytes = live.change_log().serialize();
    let torn = &bytes[..bytes.len() - 7]; // cut inside the last frame
    let err = ChangeLog::deserialize(torn).unwrap_err();
    let WalError::TornTail { valid, .. } = err else {
        panic!("expected torn tail, got {err:?}");
    };
    assert_eq!(valid.len(), 2, "last complete record is seq 2");

    let mut cold = base();
    cold.replay(&valid).unwrap();
    assert_eq!(cold.epoch().0, 2);
    assert_eq!(cold.table("nav").unwrap().len(), 2, "no partial row applied");
}

/// A bit-flip in the snapshot's interior is corruption, not a tail:
/// nothing decodes, nothing is applied.
#[test]
fn corrupt_snapshot_interior_is_rejected_outright() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.append_rows("nav", vec![nav_row(2, 0.9, "2022-01-04")]).unwrap();
    let mut bytes = live.change_log().serialize();
    bytes[10] ^= 0x40; // inside the first frame, with a frame behind it
    match ChangeLog::deserialize(&bytes) {
        Err(WalError::Corrupt { .. }) => {}
        other => panic!("expected corruption, got {other:?}"),
    }
}

#[test]
fn snapshot_roundtrip_preserves_replayability() {
    let mut live = base();
    live.append_rows("nav", vec![nav_row(1, 1.5, "2022-01-03")]).unwrap();
    live.apply_changes(vec![
        ("fund".into(), vec![vec![Value::Int(3), Value::from("Gamma")]]),
        ("nav".into(), vec![nav_row(3, 10.0, "2022-01-03")]),
    ])
    .unwrap();

    let restored = ChangeLog::deserialize(&live.change_log().serialize()).unwrap();
    assert_eq!(&restored, live.change_log());
    let mut cold = base();
    cold.replay(&restored).unwrap();
    assert_eq!(cold.epoch(), live.epoch());
    assert_eq!(cold.total_rows(), live.total_rows());
}
