//! Execution errors.

use std::fmt;

/// Result alias for engine operations.
pub type ExecResult<T> = std::result::Result<T, ExecError>;

/// An error raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The SQL text failed to parse.
    Parse(String),
    /// A referenced table does not exist in the database.
    UnknownTable(String),
    /// A referenced column does not exist in its scope.
    UnknownColumn(String),
    /// An unqualified column name matches more than one table in scope.
    AmbiguousColumn(String),
    /// An inner/left/right join has no ON condition.
    DanglingJoin(String),
    /// A value had the wrong type for the operation.
    Type(String),
    /// A scalar subquery returned more than one row/column.
    Cardinality(String),
    /// Unsupported construct.
    Unsupported(String),
    /// A live append violated a foreign-key constraint.
    ForeignKey(String),
    /// A change-log replay could not be applied (sequence gap, torn log).
    ChangeLog(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Parse(m) => write!(f, "parse error: {m}"),
            ExecError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            ExecError::DanglingJoin(t) => write!(f, "join on {t} has no ON condition"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Cardinality(m) => write!(f, "cardinality error: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::ForeignKey(m) => write!(f, "foreign key violation: {m}"),
            ExecError::ChangeLog(m) => write!(f, "change log error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}
