//! Tables and databases: typed row storage over the shared catalog types.

use crate::error::{ExecError, ExecResult};
use crate::value::Value;
use sqlkit::catalog::{CatalogSchema, CatalogTable, ColType};

/// A stored table: its catalog definition plus row data.
#[derive(Debug, Clone)]
pub struct Table {
    pub def: CatalogTable,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table for a definition.
    pub fn empty(def: CatalogTable) -> Self {
        Table { def, rows: Vec::new() }
    }

    /// Appends a row after checking arity and (loosely) types. `Null` is
    /// allowed anywhere; Int is accepted into Float columns.
    pub fn insert(&mut self, row: Vec<Value>) -> ExecResult<()> {
        if row.len() != self.def.columns.len() {
            return Err(ExecError::Type(format!(
                "table {} expects {} columns, got {}",
                self.def.name,
                self.def.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.def.columns) {
            let ok = matches!(
                (v, c.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColType::Int | ColType::Float)
                    | (Value::Float(_), ColType::Float)
                    | (Value::Str(_), ColType::Text | ColType::Date)
                    | (Value::Bool(_), ColType::Int)
            );
            if !ok {
                return Err(ExecError::Type(format!(
                    "column {}.{} has type {:?}, got {v:?}",
                    self.def.name, c.name, c.ty
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A populated database: catalog plus one [`Table`] per catalog table.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: CatalogSchema,
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database from a catalog.
    pub fn new(catalog: CatalogSchema) -> Self {
        let tables = catalog.tables.iter().cloned().map(Table::empty).collect();
        Database { catalog, tables }
    }

    /// The catalog this database instantiates.
    pub fn catalog(&self) -> &CatalogSchema {
        &self.catalog
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> ExecResult<&Table> {
        self.tables
            .iter()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> ExecResult<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> ExecResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum::<usize>()
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, ForeignKey};

    fn catalog() -> CatalogSchema {
        CatalogSchema {
            db_id: "t".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("fid", ColType::Int, "", ""),
                    CatalogColumn::new("nav", ColType::Float, "", ""),
                    CatalogColumn::new("nm", ColType::Text, "", ""),
                ],
            }],
            foreign_keys: Vec::<ForeignKey>::new(),
        }
    }

    #[test]
    fn insert_checks_arity() {
        let mut db = Database::new(catalog());
        assert!(db.insert("fund", vec![Value::Int(1)]).is_err());
        assert!(db
            .insert("fund", vec![Value::Int(1), Value::Float(1.5), Value::from("Alpha")])
            .is_ok());
        assert_eq!(db.table("fund").unwrap().len(), 1);
    }

    #[test]
    fn insert_checks_types_loosely() {
        let mut db = Database::new(catalog());
        // Int into Float column is fine.
        assert!(db.insert("fund", vec![Value::Int(1), Value::Int(2), Value::from("x")]).is_ok());
        // Str into Int column is not.
        assert!(db
            .insert("fund", vec![Value::from("x"), Value::Float(1.0), Value::from("y")])
            .is_err());
        // NULL goes anywhere.
        assert!(db.insert("fund", vec![Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = Database::new(catalog());
        assert_eq!(db.table("ghost").unwrap_err(), ExecError::UnknownTable("ghost".into()));
    }

    #[test]
    fn table_lookup_ignores_case() {
        let db = Database::new(catalog());
        assert!(db.table("FUND").is_ok());
    }
}
