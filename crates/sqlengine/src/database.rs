//! Tables and databases: typed row storage over the shared catalog types,
//! plus the validated live-append path ([`Database::append_rows`] /
//! [`Database::apply_changes`]) that logs every mutation into a
//! replayable [`ChangeLog`] and bumps the database's [`DataEpoch`].

use crate::error::{ExecError, ExecResult};
use crate::value::Value;
use crate::wal::{ChangeLog, ChangeRecord, DataEpoch};
use sqlkit::catalog::{CatalogSchema, CatalogTable, ColType};

/// A stored table: its catalog definition plus row data.
#[derive(Debug, Clone)]
pub struct Table {
    pub def: CatalogTable,
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table for a definition.
    pub fn empty(def: CatalogTable) -> Self {
        Table { def, rows: Vec::new() }
    }

    /// Validates a candidate row against the table definition: arity plus
    /// (loose) types. `Null` is allowed anywhere; Int is accepted into
    /// Float columns.
    pub fn check_row(&self, row: &[Value]) -> ExecResult<()> {
        if row.len() != self.def.columns.len() {
            return Err(ExecError::Type(format!(
                "table {} expects {} columns, got {}",
                self.def.name,
                self.def.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.def.columns) {
            let ok = matches!(
                (v, c.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColType::Int | ColType::Float)
                    | (Value::Float(_), ColType::Float)
                    | (Value::Str(_), ColType::Text | ColType::Date)
                    | (Value::Bool(_), ColType::Int)
            );
            if !ok {
                return Err(ExecError::Type(format!(
                    "column {}.{} has type {:?}, got {v:?}",
                    self.def.name, c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Appends a row after [`Table::check_row`] validation.
    pub fn insert(&mut self, row: Vec<Value>) -> ExecResult<()> {
        self.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A populated database: catalog plus one [`Table`] per catalog table,
/// a [`DataEpoch`] counting applied live mutations, and the [`ChangeLog`]
/// recording them.
///
/// Two mutation paths exist on purpose. [`Database::insert`] is the
/// *base-population* path (datagen filling the snapshot): unlogged, epoch
/// stays 0. [`Database::append_rows`] / [`Database::apply_changes`] are
/// the *live* path: validated against schema and foreign keys, logged,
/// and epoch-bumping — replaying the log onto an equal base snapshot
/// reproduces the live database exactly.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: CatalogSchema,
    tables: Vec<Table>,
    epoch: DataEpoch,
    log: ChangeLog,
}

impl Database {
    /// Creates an empty database from a catalog, at epoch 0 with an
    /// empty change log.
    pub fn new(catalog: CatalogSchema) -> Self {
        let tables = catalog.tables.iter().cloned().map(Table::empty).collect();
        Database { catalog, tables, epoch: DataEpoch::ZERO, log: ChangeLog::new() }
    }

    /// The catalog this database instantiates.
    pub fn catalog(&self) -> &CatalogSchema {
        &self.catalog
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> ExecResult<&Table> {
        self.tables
            .iter()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> ExecResult<&mut Table> {
        self.tables
            .iter_mut()
            .find(|t| t.def.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> ExecResult<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum::<usize>()
    }

    /// Iterates over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// The database's current data epoch: the sequence number of the
    /// newest applied change record (0 for a pristine base snapshot).
    pub fn epoch(&self) -> DataEpoch {
        self.epoch
    }

    /// The ordered log of every live mutation applied to this database.
    pub fn change_log(&self) -> &ChangeLog {
        &self.log
    }

    /// Appends a batch of rows to one table through the live path:
    /// validates schema types and foreign keys, logs one
    /// [`ChangeRecord`], bumps the epoch. All-or-nothing — on error no
    /// row is applied, no record logged, the epoch unchanged.
    pub fn append_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> ExecResult<DataEpoch> {
        self.apply_changes(vec![(table.to_string(), rows)])
    }

    /// Applies a batch of per-table appends atomically through the live
    /// path. Every change is validated *before* anything is applied
    /// (foreign keys may reference rows earlier in the same batch, so a
    /// parent insert and its dependent tick can ride one call); then each
    /// change is applied and logged as one [`ChangeRecord`], bumping the
    /// epoch once per change. On any validation error the database is
    /// untouched: no partial row, no log entry, no epoch movement.
    pub fn apply_changes(
        &mut self,
        changes: Vec<(String, Vec<Vec<Value>>)>,
    ) -> ExecResult<DataEpoch> {
        // Phase 1: validate everything against current data + the
        // pending batch, resolving each table name to its canonical
        // catalog casing.
        let mut resolved: Vec<(String, Vec<Vec<Value>>)> = Vec::with_capacity(changes.len());
        for (name, rows) in changes {
            let table = self.table(&name)?;
            for row in &rows {
                table.check_row(row)?;
            }
            let canonical = table.def.name.clone();
            for row in &rows {
                self.check_foreign_keys(&canonical, row, &resolved)?;
            }
            resolved.push((canonical, rows));
        }
        // Phase 2: apply + log. Validation passed for the whole batch,
        // so this cannot fail partway.
        for (table, rows) in resolved {
            let target = self
                .tables
                .iter_mut()
                .find(|t| t.def.name == table)
                // INVARIANT: `table` is the canonical name resolved from
                // the catalog during phase-1 validation above.
                .expect("table resolved during validation");
            target.rows.extend(rows.iter().cloned());
            let seq = self.log.push(table, rows);
            self.epoch = DataEpoch(seq);
        }
        Ok(self.epoch)
    }

    /// Checks every foreign key whose `from_table` is `table` for one
    /// candidate row: a non-NULL FK value must match an existing value in
    /// the referenced column — in stored rows or in `pending` rows from
    /// earlier in the same batch. Int/Float compare numerically
    /// (`eq_sql`), mirroring the executor's join semantics.
    fn check_foreign_keys(
        &self,
        table: &str,
        row: &[Value],
        pending: &[(String, Vec<Vec<Value>>)],
    ) -> ExecResult<()> {
        for fk in &self.catalog.foreign_keys {
            if !fk.from_table.eq_ignore_ascii_case(table) {
                continue;
            }
            let from_table = self.table(&fk.from_table)?;
            let Some(from_col) = from_table.def.column_index(&fk.from_column) else {
                continue;
            };
            let value = &row[from_col];
            if value.is_null() {
                continue;
            }
            let to_table = self.table(&fk.to_table)?;
            let Some(to_col) = to_table.def.column_index(&fk.to_column) else {
                continue;
            };
            let stored = to_table.rows.iter();
            let batched = pending
                .iter()
                .filter(|(name, _)| name.eq_ignore_ascii_case(&fk.to_table))
                .flat_map(|(_, rows)| rows.iter());
            let found = stored
                .chain(batched)
                .any(|r| r[to_col].eq_sql(value) == Some(true));
            if !found {
                return Err(ExecError::ForeignKey(format!(
                    "{}.{} = {value:?} has no match in {}.{}",
                    fk.from_table, fk.from_column, fk.to_table, fk.to_column
                )));
            }
        }
        Ok(())
    }

    /// Replays a change log onto this database, applying every record
    /// this database has not yet seen. Idempotent: records with
    /// `seq <= self.epoch()` are skipped (already applied), so replaying
    /// the same log twice — or a log extending this database's own — is
    /// a no-op for the overlap. A gap (`seq > epoch + 1`) is an error:
    /// the log does not continue this database's history.
    ///
    /// Each applied record goes through the same validated path as
    /// [`Database::apply_changes`], so replay onto the correct base
    /// snapshot reconstructs the live database exactly — rows, log, and
    /// epoch all equal.
    pub fn replay(&mut self, log: &ChangeLog) -> ExecResult<DataEpoch> {
        for record in log.since(self.epoch.0) {
            if record.seq != self.epoch.0 + 1 {
                return Err(ExecError::ChangeLog(format!(
                    "replay gap: record {} onto epoch {}",
                    record.seq, self.epoch.0
                )));
            }
            self.apply_changes(vec![(record.table.clone(), record.rows.clone())])?;
        }
        Ok(self.epoch)
    }

    /// Replays one record by reference (used by consumers holding a
    /// borrowed log tail); same skip/gap semantics as [`Database::replay`].
    pub fn replay_record(&mut self, record: &ChangeRecord) -> ExecResult<DataEpoch> {
        if record.seq <= self.epoch.0 {
            return Ok(self.epoch);
        }
        if record.seq != self.epoch.0 + 1 {
            return Err(ExecError::ChangeLog(format!(
                "replay gap: record {} onto epoch {}",
                record.seq, self.epoch.0
            )));
        }
        self.apply_changes(vec![(record.table.clone(), record.rows.clone())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::catalog::{CatalogColumn, ForeignKey};

    fn catalog() -> CatalogSchema {
        CatalogSchema {
            db_id: "t".into(),
            tables: vec![CatalogTable {
                name: "fund".into(),
                desc_en: String::new(),
                desc_cn: String::new(),
                columns: vec![
                    CatalogColumn::new("fid", ColType::Int, "", ""),
                    CatalogColumn::new("nav", ColType::Float, "", ""),
                    CatalogColumn::new("nm", ColType::Text, "", ""),
                ],
            }],
            foreign_keys: Vec::<ForeignKey>::new(),
        }
    }

    #[test]
    fn insert_checks_arity() {
        let mut db = Database::new(catalog());
        assert!(db.insert("fund", vec![Value::Int(1)]).is_err());
        assert!(db
            .insert("fund", vec![Value::Int(1), Value::Float(1.5), Value::from("Alpha")])
            .is_ok());
        assert_eq!(db.table("fund").unwrap().len(), 1);
    }

    #[test]
    fn insert_checks_types_loosely() {
        let mut db = Database::new(catalog());
        // Int into Float column is fine.
        assert!(db.insert("fund", vec![Value::Int(1), Value::Int(2), Value::from("x")]).is_ok());
        // Str into Int column is not.
        assert!(db
            .insert("fund", vec![Value::from("x"), Value::Float(1.0), Value::from("y")])
            .is_err());
        // NULL goes anywhere.
        assert!(db.insert("fund", vec![Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = Database::new(catalog());
        assert_eq!(db.table("ghost").unwrap_err(), ExecError::UnknownTable("ghost".into()));
    }

    #[test]
    fn table_lookup_ignores_case() {
        let db = Database::new(catalog());
        assert!(db.table("FUND").is_ok());
    }
}
