//! In-memory relational execution engine.
//!
//! The FinSQL paper's evaluation metric is *execution accuracy* (EX): the
//! predicted and gold SQL are executed against the database and their
//! result sets compared. Its CoT augmentation likewise needs an
//! execution-based self-check. This crate provides the substrate for
//! both: typed in-memory tables over the [`sqlkit::catalog`] schema types
//! and an interpreter for the full [`sqlkit::ast`] dialect — joins,
//! grouping, aggregation, having, ordering, limits, (correlated)
//! subqueries and set operations.
//!
//! The engine favours predictable SQLite-like semantics over strictness:
//! bare columns alongside aggregates evaluate against the group's first
//! row, comparisons coerce Int/Float, and dates are lexicographically
//! comparable `YYYY-MM-DD` strings.

#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod executor;
pub mod expr_eval;
pub mod result;
pub mod value;
pub mod wal;

pub use database::{Database, Table};
pub use error::{ExecError, ExecResult};
pub use executor::execute;
pub use result::{results_match, ResultSet};
pub use value::Value;
pub use wal::{ChangeLog, ChangeRecord, DataEpoch, WalError};

use sqlkit::ast::Statement;

/// Parses and executes SQL text against a database.
pub fn run_sql(db: &Database, sql: &str) -> ExecResult<ResultSet> {
    let stmt = sqlkit::parse_statement(sql).map_err(|e| ExecError::Parse(e.to_string()))?;
    match stmt {
        Statement::Select(q) => execute(db, &q),
    }
}

/// Executes both queries and reports whether their results match under the
/// EX criterion (see [`results_match`]). Either side failing to execute
/// counts as a mismatch (even when both fail: an unexecutable prediction is
/// wrong regardless of the gold query's health — and gold queries in the
/// benchmark always execute).
pub fn execution_accuracy(db: &Database, predicted: &str, gold: &str) -> bool {
    let ordered = sql_has_order_by(gold);
    match (run_sql(db, predicted), run_sql(db, gold)) {
        (Ok(p), Ok(g)) => results_match(&p, &g, ordered),
        _ => false,
    }
}

fn sql_has_order_by(sql: &str) -> bool {
    match sqlkit::parse_statement(sql) {
        Ok(Statement::Select(q)) => !q.order_by.is_empty(),
        Err(_) => false,
    }
}
