//! WAL-style change logging and data epochs — the substrate of the live
//! append path.
//!
//! Financial databases mutate all day; the engine's answer cache keys on
//! a configuration fingerprint, so data mutations must be *visible to
//! the fingerprint* or a row insert would silently serve stale cached
//! answers. Every mutation through [`crate::Database::append_rows`] /
//! [`crate::Database::apply_changes`] does three things atomically:
//! validates the rows (schema types + foreign keys), appends one
//! [`ChangeRecord`] to the database's in-memory [`ChangeLog`], and bumps
//! the database's [`DataEpoch`] to the record's sequence number. The
//! epoch is mixed into the config fingerprint upstream, so a cache entry
//! written at epoch N is structurally unreachable at epoch N+1.
//!
//! The log is replayable: [`crate::Database::replay`] applies a log onto
//! a freshly generated base database and reproduces the live database
//! bit for bit (the differential suite in `crates/core/tests/
//! live_equality.rs` pins this). It is also serialisable for
//! snapshot/restore: a length-prefixed, checksummed binary frame per
//! record, so a truncated or torn tail is *detected* — decoding surfaces
//! [`WalError::TornTail`] carrying the longest valid prefix, and no
//! partial record is ever applied.

use crate::value::Value;
use std::fmt;

/// A database's data-state version: the number of change records applied
/// since the base snapshot was built. Epoch 0 is the freshly generated
/// database; every applied [`ChangeRecord`] advances it by one, so
/// `epoch == change_log().last_seq()` always holds.
///
/// The epoch is the *only* data-state signal the serving layer needs:
/// two databases built from the same base seed at the same epoch hold
/// identical rows (records are applied in sequence order and validated
/// identically), so mixing the epoch into the answer-cache fingerprint
/// makes a stale-data hit structurally impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DataEpoch(pub u64);

impl DataEpoch {
    /// The epoch of a freshly constructed database.
    pub const ZERO: DataEpoch = DataEpoch(0);

    /// The epoch after one more change record.
    #[must_use]
    pub fn next(self) -> DataEpoch {
        DataEpoch(self.0 + 1)
    }
}

impl fmt::Display for DataEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One validated, applied mutation: a batch of rows appended to a single
/// table. `seq` is the per-database monotone sequence number (1-based,
/// dense: the log's i-th record has `seq == i + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    pub seq: u64,
    /// Canonical (catalog-cased) table name.
    pub table: String,
    pub rows: Vec<Vec<Value>>,
}

/// An ordered, in-memory change log with dense 1-based sequence numbers.
///
/// Records are only ever appended by the owning [`crate::Database`]'s
/// validated mutation path, so every record in a log was legal against
/// the state produced by its predecessors — which is what makes replay
/// onto an equal base infallible and idempotent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeLog {
    records: Vec<ChangeRecord>,
}

/// Serialisation frame constants: magic + version header, then per
/// record a little-endian `u32` payload length, the payload, and an
/// FNV-1a 64-bit checksum of the payload.
const WAL_MAGIC: &[u8; 5] = b"FWAL\x01";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

impl ChangeLog {
    /// An empty log (sequence numbers start at 1).
    pub fn new() -> Self {
        ChangeLog::default()
    }

    /// Every record, in sequence order.
    pub fn records(&self) -> &[ChangeRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no change has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The sequence number of the newest record (0 when empty) — always
    /// equal to the owning database's epoch.
    pub fn last_seq(&self) -> u64 {
        self.records.len() as u64
    }

    /// The records with `seq > after`, i.e. the tail a consumer at epoch
    /// `after` has not yet absorbed. Sequence numbers are dense, so this
    /// is a slice, not a scan.
    pub fn since(&self, after: u64) -> &[ChangeRecord] {
        let from = (after as usize).min(self.records.len());
        &self.records[from..]
    }

    /// Appends a record, assigning the next sequence number. Crate-only:
    /// the database's validated mutation path is the sole writer.
    pub(crate) fn push(&mut self, table: String, rows: Vec<Vec<Value>>) -> u64 {
        let seq = self.last_seq() + 1;
        self.records.push(ChangeRecord { seq, table, rows });
        seq
    }

    /// Serialises the log into the checksummed binary frame format for
    /// snapshot/restore. Deterministic: equal logs produce equal bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.records.len() + WAL_MAGIC.len());
        out.extend_from_slice(WAL_MAGIC);
        for record in &self.records {
            let mut payload = Vec::new();
            payload.extend_from_slice(&record.seq.to_le_bytes());
            put_str(&mut payload, &record.table);
            payload.extend_from_slice(&(record.rows.len() as u32).to_le_bytes());
            for row in &record.rows {
                payload.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for value in row {
                    put_value(&mut payload, value);
                }
            }
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            let checksum = fnv64(&payload);
            out.extend_from_slice(&payload);
            out.extend_from_slice(&checksum.to_le_bytes());
        }
        out
    }

    /// Decodes a serialised log, verifying the header, every frame
    /// checksum and sequence density. A truncated or torn tail yields
    /// [`WalError::TornTail`] carrying the longest valid prefix so a
    /// caller can recover every complete record while surfacing the
    /// fault; damage *before* the tail yields [`WalError::Corrupt`].
    pub fn deserialize(bytes: &[u8]) -> Result<ChangeLog, WalError> {
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(WalError::BadHeader);
        }
        let mut log = ChangeLog::new();
        let mut offset = WAL_MAGIC.len();
        while offset < bytes.len() {
            let frame_start = offset;
            let torn = |log: ChangeLog| WalError::TornTail { valid: log, offset: frame_start };
            let Some(len_bytes) = bytes.get(offset..offset + 4) else {
                return Err(torn(log));
            };
            // INVARIANT: get() returned exactly the 4 bytes requested.
            let payload_len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
            offset += 4;
            let Some(payload) = bytes.get(offset..offset + payload_len) else {
                return Err(torn(log));
            };
            offset += payload_len;
            let Some(sum_bytes) = bytes.get(offset..offset + 8) else {
                return Err(torn(log));
            };
            // INVARIANT: get() returned exactly the 8 bytes requested.
            let checksum = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte slice"));
            offset += 8;
            if fnv64(payload) != checksum {
                // A frame whose bytes are all present but whose checksum
                // fails is a torn *tail* only when nothing follows it;
                // with more data behind it, the middle of the log is
                // damaged and no prefix can be trusted to be "the tail".
                if offset >= bytes.len() {
                    return Err(torn(log));
                }
                return Err(WalError::Corrupt {
                    offset: frame_start,
                    reason: "frame checksum mismatch".to_string(),
                });
            }
            let record = decode_record(payload).map_err(|reason| WalError::Corrupt {
                offset: frame_start,
                reason,
            })?;
            if record.seq != log.last_seq() + 1 {
                return Err(WalError::Corrupt {
                    offset: frame_start,
                    reason: format!(
                        "sequence gap: record {} after {}",
                        record.seq,
                        log.last_seq()
                    ),
                });
            }
            log.records.push(record);
        }
        Ok(log)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Value tags of the frame payload encoding.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

/// A cursor over a record payload; every read is bounds-checked so a
/// checksum collision can still only yield a clean error, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or_else(|| format!("payload underrun at byte {}", self.pos))?;
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        // INVARIANT: take(4) returned exactly 4 bytes.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        // INVARIANT: take(8) returned exactly 8 bytes.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }
}

fn decode_record(payload: &[u8]) -> Result<ChangeRecord, String> {
    let mut c = Cursor { bytes: payload, pos: 0 };
    let seq = c.u64()?;
    let table = c.str()?;
    let n_rows = c.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(4096));
    for _ in 0..n_rows {
        let n_values = c.u32()? as usize;
        let mut row = Vec::with_capacity(n_values.min(256));
        for _ in 0..n_values {
            let tag = c.take(1)?[0];
            row.push(match tag {
                TAG_NULL => Value::Null,
                TAG_INT => Value::Int(c.u64()? as i64),
                TAG_FLOAT => Value::Float(f64::from_bits(c.u64()?)),
                TAG_STR => Value::Str(c.str()?),
                TAG_BOOL => Value::Bool(c.take(1)?[0] != 0),
                other => return Err(format!("unknown value tag {other}")),
            });
        }
        rows.push(row);
    }
    if c.pos != payload.len() {
        return Err(format!("{} trailing payload bytes", payload.len() - c.pos));
    }
    Ok(ChangeRecord { seq, table, rows })
}

/// Faults surfaced while decoding a serialised change log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// The magic/version header is missing or wrong.
    BadHeader,
    /// The log's tail is truncated or torn: `valid` holds every complete
    /// record before the fault (replay can stop there), `offset` is
    /// where the broken frame starts. No partial record is included.
    TornTail { valid: ChangeLog, offset: usize },
    /// Damage before the tail (bad checksum mid-log, undecodable
    /// payload, sequence gap): nothing after `offset` can be trusted.
    Corrupt { offset: usize, reason: String },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::BadHeader => write!(f, "change log header missing or wrong version"),
            WalError::TornTail { valid, offset } => write!(
                f,
                "torn change-log tail at byte {offset}: {} complete records recovered",
                valid.len()
            ),
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt change log at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ChangeLog {
        let mut log = ChangeLog::new();
        log.push(
            "mf_fundnav".into(),
            vec![
                vec![Value::Int(1), Value::Float(1.25), Value::Str("2022-04-29".into())],
                vec![Value::Int(2), Value::Null, Value::Bool(true)],
            ],
        );
        log.push("mf_fundnav".into(), vec![vec![Value::Int(3), Value::Float(2.5), Value::Null]]);
        log.push("lc_stockarchives".into(), vec![vec![Value::Str("Pacific Energy".into())]]);
        log
    }

    #[test]
    fn roundtrip_is_exact() {
        let log = sample_log();
        let bytes = log.serialize();
        assert_eq!(ChangeLog::deserialize(&bytes).unwrap(), log);
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = ChangeLog::new();
        assert_eq!(ChangeLog::deserialize(&log.serialize()).unwrap(), log);
    }

    #[test]
    fn serialisation_is_deterministic() {
        assert_eq!(sample_log().serialize(), sample_log().serialize());
    }

    #[test]
    fn bad_header_is_rejected() {
        assert_eq!(ChangeLog::deserialize(b"nope"), Err(WalError::BadHeader));
        let mut bytes = sample_log().serialize();
        bytes[4] = 99; // wrong version
        assert_eq!(ChangeLog::deserialize(&bytes), Err(WalError::BadHeader));
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_complete_prefix() {
        let log = sample_log();
        let bytes = log.serialize();
        // Frame boundaries: reconstruct how many whole records fit in a
        // prefix by re-serialising sub-logs.
        let mut boundary_len = vec![WAL_MAGIC.len()];
        for n in 1..=log.len() {
            let sub = ChangeLog { records: log.records()[..n].to_vec() };
            boundary_len.push(sub.serialize().len());
        }
        for cut in WAL_MAGIC.len()..bytes.len() {
            let truncated = &bytes[..cut];
            if let Some(n) = boundary_len.iter().position(|&b| b == cut) {
                // Exactly at a frame boundary: a clean (shorter) log.
                let got = ChangeLog::deserialize(truncated).unwrap();
                assert_eq!(got.records(), &log.records()[..n]);
            } else {
                // Mid-frame: a torn tail carrying every complete record.
                let n = boundary_len.iter().filter(|&&b| b <= cut).count() - 1;
                match ChangeLog::deserialize(truncated) {
                    Err(WalError::TornTail { valid, offset }) => {
                        assert_eq!(valid.records(), &log.records()[..n], "cut at {cut}");
                        assert_eq!(offset, boundary_len[n], "cut at {cut}");
                    }
                    other => panic!("cut at {cut}: expected torn tail, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn flipped_tail_byte_is_a_torn_tail() {
        let log = sample_log();
        let mut bytes = log.serialize();
        // Flip a byte inside the *last* frame's payload.
        let last_frame_start = ChangeLog { records: log.records()[..2].to_vec() }
            .serialize()
            .len();
        let i = last_frame_start + 6;
        bytes[i] ^= 0xFF;
        match ChangeLog::deserialize(&bytes) {
            Err(WalError::TornTail { valid, .. }) => assert_eq!(valid.len(), 2),
            other => panic!("expected torn tail, got {other:?}"),
        }
    }

    #[test]
    fn flipped_middle_byte_is_corruption_not_a_tail() {
        let log = sample_log();
        let mut bytes = log.serialize();
        let second_frame_start =
            ChangeLog { records: log.records()[..1].to_vec() }.serialize().len();
        bytes[second_frame_start + 6] ^= 0xFF;
        match ChangeLog::deserialize(&bytes) {
            Err(WalError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let mut log = sample_log();
        log.records[2].seq = 9;
        match ChangeLog::deserialize(&log.serialize()) {
            Err(WalError::Corrupt { reason, .. }) => assert!(reason.contains("sequence gap")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn since_slices_the_tail() {
        let log = sample_log();
        assert_eq!(log.since(0).len(), 3);
        assert_eq!(log.since(2).len(), 1);
        assert_eq!(log.since(2)[0].seq, 3);
        assert!(log.since(3).is_empty());
        assert!(log.since(99).is_empty());
    }

    #[test]
    fn epoch_arithmetic() {
        assert_eq!(DataEpoch::ZERO.next(), DataEpoch(1));
        assert_eq!(DataEpoch(41).next().0, 42);
        assert_eq!(format!("{}", DataEpoch(7)), "e7");
    }
}
