//! Expression evaluation: row contexts, scalar/boolean operators,
//! aggregates and subqueries.

use crate::database::Database;
use crate::error::{ExecError, ExecResult};
use crate::executor::execute_scoped;
use crate::value::Value;
use sqlkit::ast::*;

/// One FROM-clause item's slice of the concatenated row.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Name the table is known by in the query (alias or table name),
    /// lower-cased.
    pub effective: String,
    /// Column names in storage order, lower-cased.
    pub columns: Vec<String>,
    /// Offset of this table's first column in the concatenated row.
    pub offset: usize,
}

impl Binding {
    /// Index of `column` within the concatenated row, if present here.
    fn find(&self, column: &str) -> Option<usize> {
        let lower = column.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower).map(|i| self.offset + i)
    }
}

/// An evaluation scope: the bindings of one SELECT block plus an optional
/// parent scope for correlated subqueries.
pub struct Scope<'a> {
    pub bindings: &'a [Binding],
    pub row: &'a [Value],
    pub outer: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolves a column reference to a value, walking outward through
    /// parent scopes for correlated subqueries.
    pub fn lookup(&self, col: &ColumnRef) -> ExecResult<Value> {
        match self.try_lookup(col)? {
            Some(v) => Ok(v),
            None => match self.outer {
                Some(outer) => outer.lookup(col),
                None => Err(ExecError::UnknownColumn(format_col(col))),
            },
        }
    }

    fn try_lookup(&self, col: &ColumnRef) -> ExecResult<Option<Value>> {
        match &col.table {
            Some(t) => {
                let tl = t.to_ascii_lowercase();
                for b in self.bindings {
                    if b.effective == tl {
                        return match b.find(&col.column) {
                            Some(i) => Ok(Some(self.row[i].clone())),
                            None => Err(ExecError::UnknownColumn(format_col(col))),
                        };
                    }
                }
                Ok(None)
            }
            None => {
                let mut found: Option<usize> = None;
                for b in self.bindings {
                    if let Some(i) = b.find(&col.column) {
                        if found.is_some() {
                            return Err(ExecError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(i);
                    }
                }
                Ok(found.map(|i| self.row[i].clone()))
            }
        }
    }
}

fn format_col(c: &ColumnRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

/// Evaluates an expression against a single row.
pub fn eval_row(db: &Database, scope: &Scope<'_>, expr: &Expr) -> ExecResult<Value> {
    match expr {
        Expr::Column(c) => scope.lookup(c),
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::Unary { op, operand } => {
            let v = eval_row(db, scope, operand)?;
            eval_unary(*op, v)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_row(db, scope, left)?;
            // Short-circuit AND/OR with three-valued logic.
            match op {
                BinaryOp::And => {
                    if !l.is_null() && !l.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_row(db, scope, right)?;
                    Ok(bool3(and3(truth3(&l), truth3(&r))))
                }
                BinaryOp::Or => {
                    if !l.is_null() && l.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_row(db, scope, right)?;
                    Ok(bool3(or3(truth3(&l), truth3(&r))))
                }
                _ => {
                    let r = eval_row(db, scope, right)?;
                    eval_binary(*op, l, r)
                }
            }
        }
        Expr::Function { name, args, .. } => {
            if is_aggregate(name) {
                return Err(ExecError::Unsupported(format!(
                    "aggregate {name} outside GROUP BY context"
                )));
            }
            let vals: Vec<Value> =
                args.iter().map(|a| eval_row(db, scope, a)).collect::<ExecResult<_>>()?;
            eval_scalar_function(name, &vals)
        }
        Expr::CountStar => {
            Err(ExecError::Unsupported("COUNT(*) outside GROUP BY context".into()))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_row(db, scope, expr)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval_row(db, scope, item)?;
                match v.eq_sql(&w) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let v = eval_row(db, scope, expr)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let rs = execute_scoped(db, subquery, Some(scope))?;
            if rs.columns.len() != 1 {
                return Err(ExecError::Cardinality("IN subquery must return one column".into()));
            }
            let mut saw_null = false;
            for row in &rs.rows {
                match v.eq_sql(&row[0]) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_row(db, scope, expr)?;
            let lo = eval_row(db, scope, low)?;
            let hi = eval_row(db, scope, high)?;
            match (v.cmp_sql(&lo), v.cmp_sql(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval_row(db, scope, expr)?;
            let p = eval_row(db, scope, pattern)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => Ok(Value::Bool(like_match(&pat, &s) != *negated)),
                _ => Err(ExecError::Type("LIKE requires string operands".into())),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(db, scope, expr)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Exists { subquery, negated } => {
            let rs = execute_scoped(db, subquery, Some(scope))?;
            Ok(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::Subquery(q) => {
            let rs = execute_scoped(db, q, Some(scope))?;
            if rs.columns.len() != 1 {
                return Err(ExecError::Cardinality("scalar subquery must return one column".into()));
            }
            // SQLite semantics: empty → NULL, otherwise the first row.
            Ok(rs.rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null))
        }
        Expr::Case { operand, branches, else_result } => {
            match operand {
                Some(op) => {
                    let base = eval_row(db, scope, op)?;
                    for (when, then) in branches {
                        let w = eval_row(db, scope, when)?;
                        if base.eq_sql(&w) == Some(true) {
                            return eval_row(db, scope, then);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        let w = eval_row(db, scope, when)?;
                        if !w.is_null() && w.is_truthy() {
                            return eval_row(db, scope, then);
                        }
                    }
                }
            }
            match else_result {
                Some(e) => eval_row(db, scope, e),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluates an expression in a *group* context: aggregates run over the
/// group's rows; everything else evaluates against the group's first row
/// (SQLite's lax semantics).
pub fn eval_in_group(
    db: &Database,
    bindings: &[Binding],
    rows: &[Vec<Value>],
    outer: Option<&Scope<'_>>,
    expr: &Expr,
) -> ExecResult<Value> {
    match expr {
        Expr::CountStar => Ok(Value::Int(rows.len() as i64)),
        Expr::Function { name, distinct, args } if is_aggregate(name) => {
            if args.len() != 1 {
                return Err(ExecError::Type(format!("{name} takes exactly one argument")));
            }
            let mut vals = Vec::with_capacity(rows.len());
            for row in rows {
                let scope = Scope { bindings, row, outer };
                let v = eval_row(db, &scope, &args[0])?;
                if !v.is_null() {
                    vals.push(v);
                }
            }
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                vals.retain(|v| seen.insert(v.group_key()));
            }
            aggregate(name, &vals)
        }
        Expr::Unary { op, operand } => {
            let v = eval_in_group(db, bindings, rows, outer, operand)?;
            eval_unary(*op, v)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_in_group(db, bindings, rows, outer, left)?;
            let r = eval_in_group(db, bindings, rows, outer, right)?;
            match op {
                BinaryOp::And => Ok(bool3(and3(truth3(&l), truth3(&r)))),
                BinaryOp::Or => Ok(bool3(or3(truth3(&l), truth3(&r)))),
                _ => eval_binary(*op, l, r),
            }
        }
        // Everything else: first-row semantics.
        other => match rows.first() {
            Some(row) => {
                let scope = Scope { bindings, row, outer };
                eval_row(db, &scope, other)
            }
            None => Ok(Value::Null),
        },
    }
}

/// True when the expression contains an aggregate call at any depth that
/// belongs to *this* query (subqueries excluded).
pub fn contains_aggregate(expr: &Expr) -> bool {
    match expr {
        Expr::CountStar => true,
        Expr::Function { name, args, .. } => {
            is_aggregate(name) || args.iter().any(contains_aggregate)
        }
        Expr::Unary { operand, .. } => contains_aggregate(operand),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InSubquery { expr, .. } => contains_aggregate(expr),
        Expr::Case { operand, branches, else_result } => {
            operand.as_deref().map(contains_aggregate).unwrap_or(false)
                || branches.iter().any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || else_result.as_deref().map(contains_aggregate).unwrap_or(false)
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Exists { .. } | Expr::Subquery(_) => false,
    }
}

fn aggregate(name: &str, vals: &[Value]) -> ExecResult<Value> {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "COUNT" => Ok(Value::Int(vals.len() as i64)),
        "SUM" | "AVG" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0.0;
            for v in vals {
                match v {
                    Value::Int(i) => sum += *i as f64,
                    Value::Float(f) => {
                        all_int = false;
                        sum += *f;
                    }
                    other => {
                        return Err(ExecError::Type(format!("{upper} over non-numeric {other}")))
                    }
                }
            }
            if upper == "AVG" {
                Ok(Value::Float(sum / vals.len() as f64))
            } else if all_int {
                Ok(Value::Int(sum as i64))
            } else {
                Ok(Value::Float(sum))
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<&Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = match v.cmp_sql(b) {
                            Some(std::cmp::Ordering::Less) => upper == "MIN",
                            Some(std::cmp::Ordering::Greater) => upper == "MAX",
                            _ => false,
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        other => Err(ExecError::Unsupported(format!("aggregate {other}"))),
    }
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> ExecResult<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(ExecError::Type(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match truth3(&v) {
            Truth::True => Ok(Value::Bool(false)),
            Truth::False => Ok(Value::Bool(true)),
            Truth::Unknown => Ok(Value::Null),
        },
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> ExecResult<Value> {
    if op.is_comparison() {
        return match l.cmp_sql(&r) {
            None => Ok(Value::Null),
            Some(ord) => {
                let b = match op {
                    BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinaryOp::Neq => ord != std::cmp::Ordering::Equal,
                    BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                    BinaryOp::Le => ord != std::cmp::Ordering::Greater,
                    BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinaryOp::Ge => ord != std::cmp::Ordering::Less,
                    // INVARIANT: the enclosing `if op.is_comparison()`
                    // restricts `op` to the six arms above.
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
        };
    }
    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinaryOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            BinaryOp::Div => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    // Integer division promotes like SQLite's `/` on
                    // integers... but analytics expect real division;
                    // promote when inexact.
                    if a % b == 0 {
                        Ok(Value::Int(a / b))
                    } else {
                        Ok(Value::Float(*a as f64 / *b as f64))
                    }
                }
            }
            BinaryOp::Mod => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => Err(ExecError::Type(format!("bad operator {op:?} for integers"))),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ExecError::Type(format!("arithmetic on non-numeric {l} / {r}"))),
            };
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => return Err(ExecError::Type(format!("bad operator {op:?}"))),
            };
            Ok(Value::Float(v))
        }
    }
}

fn eval_scalar_function(name: &str, args: &[Value]) -> ExecResult<Value> {
    let upper = name.to_ascii_uppercase();
    let arity_err =
        || Err(ExecError::Type(format!("wrong number of arguments for {upper}")));
    match upper.as_str() {
        "ABS" => match args {
            [Value::Int(v)] => Ok(Value::Int(v.abs())),
            [Value::Float(v)] => Ok(Value::Float(v.abs())),
            [Value::Null] => Ok(Value::Null),
            [other] => Err(ExecError::Type(format!("ABS of {other}"))),
            _ => arity_err(),
        },
        "ROUND" => match args {
            [v] => round_value(v, 0),
            [v, Value::Int(d)] => round_value(v, *d),
            _ => arity_err(),
        },
        "LENGTH" => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            [other] => Err(ExecError::Type(format!("LENGTH of {other}"))),
            _ => arity_err(),
        },
        "LOWER" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            _ => arity_err(),
        },
        "UPPER" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            _ => arity_err(),
        },
        "SUBSTR" | "SUBSTRING" => match args {
            [Value::Str(s), Value::Int(start), Value::Int(len)] => {
                let chars: Vec<char> = s.chars().collect();
                let begin = (start - 1).max(0) as usize;
                let end = (begin + (*len).max(0) as usize).min(chars.len());
                Ok(Value::Str(chars.get(begin..end).unwrap_or(&[]).iter().collect()))
            }
            [Value::Null, ..] => Ok(Value::Null),
            _ => arity_err(),
        },
        "COALESCE" => {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        other => Err(ExecError::Unsupported(format!("function {other}"))),
    }
}

fn round_value(v: &Value, digits: i64) -> ExecResult<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(*i)),
        Value::Float(f) => {
            let scale = 10f64.powi(digits as i32);
            Ok(Value::Float((f * scale).round() / scale))
        }
        other => Err(ExecError::Type(format!("ROUND of {other}"))),
    }
}

/// SQL `LIKE` matching with `%` (any run) and `_` (single char).
/// Case-insensitive for ASCII, as in SQLite's default.
pub fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Consume zero or more chars.
                (0..=t.len()).any(|k| rec(&p[1..], &t[k..]))
            }
            Some('_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(c) => {
                !t.is_empty()
                    && t[0].to_lowercase().eq(c.to_lowercase())
                    && rec(&p[1..], &t[1..])
            }
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

/// Three-valued logic helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

pub fn truth3(v: &Value) -> Truth {
    match v {
        Value::Null => Truth::Unknown,
        other => {
            if other.is_truthy() {
                Truth::True
            } else {
                Truth::False
            }
        }
    }
}

fn and3(a: Truth, b: Truth) -> Truth {
    match (a, b) {
        (Truth::False, _) | (_, Truth::False) => Truth::False,
        (Truth::True, Truth::True) => Truth::True,
        _ => Truth::Unknown,
    }
}

fn or3(a: Truth, b: Truth) -> Truth {
    match (a, b) {
        (Truth::True, _) | (_, Truth::True) => Truth::True,
        (Truth::False, Truth::False) => Truth::False,
        _ => Truth::Unknown,
    }
}

fn bool3(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

fn is_aggregate(name: &str) -> bool {
    sqlkit::ast::is_aggregate(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("%fund%", "China Growth Fund A"));
        assert!(like_match("abc", "ABC"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        assert!(like_match("2022-%", "2022-04-01"));
    }

    #[test]
    fn aggregate_sum_prefers_int() {
        assert_eq!(aggregate("SUM", &[Value::Int(1), Value::Int(2)]).unwrap(), Value::Int(3));
        assert_eq!(
            aggregate("SUM", &[Value::Int(1), Value::Float(0.5)]).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn aggregate_empty_group() {
        assert_eq!(aggregate("COUNT", &[]).unwrap(), Value::Int(0));
        assert_eq!(aggregate("SUM", &[]).unwrap(), Value::Null);
        assert_eq!(aggregate("MAX", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn aggregate_min_max_on_strings() {
        let vals = [Value::from("2022-03-01"), Value::from("2022-01-01")];
        assert_eq!(aggregate("MIN", &vals).unwrap(), Value::from("2022-01-01"));
        assert_eq!(aggregate("MAX", &vals).unwrap(), Value::from("2022-03-01"));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(and3(Truth::Unknown, Truth::False), Truth::False);
        assert_eq!(and3(Truth::Unknown, Truth::True), Truth::Unknown);
        assert_eq!(or3(Truth::Unknown, Truth::True), Truth::True);
        assert_eq!(or3(Truth::Unknown, Truth::False), Truth::Unknown);
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_scalar_function("abs", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_scalar_function("round", &[Value::Float(9.87654), Value::Int(2)]).unwrap(),
            Value::Float(9.88)
        );
        assert_eq!(eval_scalar_function("length", &[Value::from("abc")]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_scalar_function("substr", &[Value::from("fund"), Value::Int(2), Value::Int(2)])
                .unwrap(),
            Value::from("un")
        );
        assert_eq!(
            eval_scalar_function("coalesce", &[Value::Null, Value::Int(7)]).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn integer_division_promotes_when_inexact() {
        assert_eq!(
            eval_binary(BinaryOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Div, Value::Int(6), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(eval_binary(BinaryOp::Div, Value::Int(1), Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn comparison_with_null_is_null() {
        assert_eq!(
            eval_binary(BinaryOp::Eq, Value::Null, Value::Int(1)).unwrap(),
            Value::Null
        );
    }
}
