//! Runtime values and their SQL comparison semantics.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A runtime cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view with Int→Float coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL truthiness: NULL is "unknown" and filtered out by WHERE.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Null => false,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Three-valued SQL comparison. Returns `None` when either side is
    /// NULL or the types are incomparable.
    pub fn cmp_sql(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (NULL-propagating).
    pub fn eq_sql(&self, other: &Value) -> Option<bool> {
        self.cmp_sql(other).map(|o| o == Ordering::Equal)
    }

    /// A total ordering used for ORDER BY and sorting result rows: NULLs
    /// sort first, then by type class, then by value.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match self.cmp_sql(other) {
            Some(o) => o,
            None => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => {
                    let (ca, cb) = (class(self), class(other));
                    if ca != cb {
                        ca.cmp(&cb)
                    } else {
                        // Same class but incomparable: NaN floats.
                        Ordering::Equal
                    }
                }
            },
        }
    }

    /// A canonical key usable for hashing/grouping: floats that are whole
    /// numbers collapse onto their integer key so `1` and `1.0` group
    /// together, mirroring SQLite.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Int(i64::from(*b)),
            Value::Int(v) => GroupKey::Int(*v),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && *v >= i64::MIN as f64 && *v <= i64::MAX as f64
                {
                    GroupKey::Int(*v as i64)
                } else {
                    GroupKey::Float(v.to_bits())
                }
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable canonical form of a [`Value`] used as a grouping key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).eq_sql(&Value::Null), None);
    }

    #[test]
    fn int_float_coercion() {
        assert_eq!(Value::Int(2).cmp_sql(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).cmp_sql(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn strings_compare_lexicographically() {
        // Date semantics: YYYY-MM-DD strings order correctly.
        assert_eq!(
            Value::from("2022-01-15").cmp_sql(&Value::from("2022-02-01")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn mixed_types_are_incomparable() {
        assert_eq!(Value::from("a").cmp_sql(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_puts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::from("x"), Value::Float(1.5)];
        vals.sort_by(|a, b| a.cmp_total(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(2));
        assert_eq!(vals[3], Value::from("x"));
    }

    #[test]
    fn group_key_unifies_int_and_whole_float() {
        assert_eq!(Value::Int(3).group_key(), Value::Float(3.0).group_key());
        assert_ne!(Value::Float(3.5).group_key(), Value::Int(3).group_key());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(5).is_truthy());
        assert!(!Value::Int(0).is_truthy());
    }
}
