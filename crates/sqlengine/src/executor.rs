//! The query executor: FROM/JOIN assembly, filtering, grouping,
//! projection, set operations, ordering and limits.

use crate::database::Database;
use crate::error::{ExecError, ExecResult};
use crate::expr_eval::{contains_aggregate, eval_in_group, eval_row, Binding, Scope};
use crate::result::ResultSet;
use crate::value::{GroupKey, Value};
use sqlkit::ast::*;
use std::collections::HashMap;

/// Executes a query against a database.
pub fn execute(db: &Database, q: &SelectStmt) -> ExecResult<ResultSet> {
    execute_scoped(db, q, None)
}

/// Executes a query with an optional outer scope (for correlated
/// subqueries).
pub fn execute_scoped(
    db: &Database,
    q: &SelectStmt,
    outer: Option<&Scope<'_>>,
) -> ExecResult<ResultSet> {
    match &q.body {
        SetExpr::Select(s) => exec_select(db, s, &q.order_by, q.limit, outer),
        SetExpr::SetOp { .. } => {
            let rs = exec_set_expr(db, &q.body, outer)?;
            order_and_limit_plain(rs, &q.order_by, q.limit)
        }
    }
}

fn exec_set_expr(db: &Database, body: &SetExpr, outer: Option<&Scope<'_>>) -> ExecResult<ResultSet> {
    match body {
        SetExpr::Select(s) => exec_select(db, s, &[], None, outer),
        SetExpr::SetOp { op, all, left, right } => {
            let l = exec_set_expr(db, left, outer)?;
            let r = exec_set_expr(db, right, outer)?;
            if l.columns.len() != r.columns.len() {
                return Err(ExecError::Cardinality(
                    "set operands must have the same number of columns".into(),
                ));
            }
            let rows = match (op, all) {
                (SetOp::Union, true) => {
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    rows
                }
                (SetOp::Union, false) => dedup_rows({
                    let mut rows = l.rows;
                    rows.extend(r.rows);
                    rows
                }),
                (SetOp::Intersect, _) => {
                    let rk: std::collections::HashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedup_rows(
                        l.rows.into_iter().filter(|row| rk.contains(&row_key(row))).collect(),
                    )
                }
                (SetOp::Except, _) => {
                    let rk: std::collections::HashSet<Vec<GroupKey>> =
                        r.rows.iter().map(|row| row_key(row)).collect();
                    dedup_rows(
                        l.rows.into_iter().filter(|row| !rk.contains(&row_key(row))).collect(),
                    )
                }
            };
            Ok(ResultSet { columns: l.columns, rows })
        }
    }
}

fn row_key(row: &[Value]) -> Vec<GroupKey> {
    row.iter().map(Value::group_key).collect()
}

fn dedup_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if seen.insert(row_key(&row)) {
            out.push(row);
        }
    }
    out
}

/// Ordering/limit applied to a plain result set (set operations): keys may
/// be output column names or 1-based positions.
fn order_and_limit_plain(
    mut rs: ResultSet,
    order_by: &[OrderByItem],
    limit: Option<Limit>,
) -> ExecResult<ResultSet> {
    if !order_by.is_empty() {
        let mut key_indices = Vec::new();
        for item in order_by {
            let idx = match &item.expr {
                Expr::Column(c) => rs
                    .columns
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(&c.column))
                    .ok_or_else(|| ExecError::UnknownColumn(c.column.clone()))?,
                Expr::Literal(Literal::Int(k)) => {
                    let k = *k as usize;
                    if k == 0 || k > rs.columns.len() {
                        return Err(ExecError::Cardinality(format!("ORDER BY position {k}")));
                    }
                    k - 1
                }
                _ => {
                    return Err(ExecError::Unsupported(
                        "ORDER BY expression over a set operation".into(),
                    ))
                }
            };
            key_indices.push((idx, item.desc));
        }
        rs.rows.sort_by(|a, b| {
            for (idx, desc) in &key_indices {
                let o = a[*idx].cmp_total(&b[*idx]);
                if o != std::cmp::Ordering::Equal {
                    return if *desc { o.reverse() } else { o };
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    apply_limit(&mut rs.rows, limit);
    Ok(rs)
}

fn apply_limit(rows: &mut Vec<Vec<Value>>, limit: Option<Limit>) {
    if let Some(l) = limit {
        let start = (l.offset as usize).min(rows.len());
        let end = (start + l.count as usize).min(rows.len());
        *rows = rows[start..end].to_vec();
    }
}

/// The data each output row was computed from, kept so ORDER BY
/// expressions can be evaluated after projection.
enum RowCtx {
    /// A single source row (non-grouped query).
    Row(Vec<Value>),
    /// The rows of the group this output row summarises.
    Group(Vec<Vec<Value>>),
}

fn exec_select(
    db: &Database,
    s: &Select,
    order_by: &[OrderByItem],
    limit: Option<Limit>,
    outer: Option<&Scope<'_>>,
) -> ExecResult<ResultSet> {
    // 1. FROM/JOIN assembly.
    let (bindings, mut rows) = match &s.from {
        Some(from) => build_from(db, from, outer)?,
        None => (Vec::new(), vec![Vec::new()]),
    };

    // 2. WHERE.
    if let Some(pred) = &s.selection {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let scope = Scope { bindings: &bindings, row: &row, outer };
            let v = eval_row(db, &scope, pred)?;
            if !v.is_null() && v.is_truthy() {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // 3. Grouping decision.
    let has_agg_items = s.items.iter().any(|it| match it {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    }) || s.having.as_ref().map(contains_aggregate).unwrap_or(false);
    let grouped = !s.group_by.is_empty() || has_agg_items;

    // 4. Projection.
    let columns = output_columns(&bindings, db, s)?;
    let mut projected: Vec<(Vec<Value>, RowCtx)> = Vec::new();
    if grouped {
        let groups: Vec<Vec<Vec<Value>>> = if s.group_by.is_empty() {
            vec![rows]
        } else {
            let mut index: HashMap<Vec<GroupKey>, usize> = HashMap::new();
            let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
            for row in rows {
                let mut key = Vec::with_capacity(s.group_by.len());
                {
                    let scope = Scope { bindings: &bindings, row: &row, outer };
                    for g in &s.group_by {
                        key.push(eval_row(db, &scope, g)?.group_key());
                    }
                }
                match index.get(&key) {
                    Some(&i) => groups[i].push(row),
                    None => {
                        index.insert(key, groups.len());
                        groups.push(vec![row]);
                    }
                }
            }
            groups
        };
        for group in groups {
            // An aggregate-only query over zero rows still yields one row
            // (e.g. COUNT(*) = 0); a GROUP BY query over zero rows yields
            // none — handled naturally since `groups` is empty then.
            if group.is_empty() && !s.group_by.is_empty() {
                continue;
            }
            if let Some(h) = &s.having {
                let hv = eval_in_group(db, &bindings, &group, outer, h)?;
                if hv.is_null() || !hv.is_truthy() {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        expand_wildcard(item, &bindings, group.first().map(|r| r.as_slice()), &mut out);
                    }
                    SelectItem::Expr { expr, .. } => {
                        out.push(eval_in_group(db, &bindings, &group, outer, expr)?);
                    }
                }
            }
            projected.push((out, RowCtx::Group(group)));
        }
    } else {
        for row in rows {
            let mut out = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        expand_wildcard(item, &bindings, Some(&row), &mut out);
                    }
                    SelectItem::Expr { expr, .. } => {
                        let scope = Scope { bindings: &bindings, row: &row, outer };
                        out.push(eval_row(db, &scope, expr)?);
                    }
                }
            }
            projected.push((out, RowCtx::Row(row)));
        }
    }

    // 5. DISTINCT.
    if s.distinct {
        let mut seen = std::collections::HashSet::new();
        projected.retain(|(row, _)| seen.insert(row_key(row)));
    }

    // 6. ORDER BY.
    if !order_by.is_empty() {
        // Pre-compute sort keys for each row.
        let mut keyed: Vec<(Vec<Value>, Vec<Value>, RowCtx)> = Vec::with_capacity(projected.len());
        for (out, ctx) in projected {
            let mut keys = Vec::with_capacity(order_by.len());
            for item in order_by {
                keys.push(eval_order_key(db, s, &bindings, &columns, &out, &ctx, outer, &item.expr)?);
            }
            keyed.push((keys, out, ctx));
        }
        keyed.sort_by(|a, b| {
            for ((ka, kb), item) in a.0.iter().zip(&b.0).zip(order_by) {
                let o = ka.cmp_total(kb);
                if o != std::cmp::Ordering::Equal {
                    return if item.desc { o.reverse() } else { o };
                }
            }
            std::cmp::Ordering::Equal
        });
        projected = keyed.into_iter().map(|(_, out, ctx)| (out, ctx)).collect();
    }

    // 7. LIMIT.
    let mut rows: Vec<Vec<Value>> = projected.into_iter().map(|(out, _)| out).collect();
    apply_limit(&mut rows, limit);
    Ok(ResultSet { columns, rows })
}

/// Evaluates an ORDER BY key for one output row.
#[allow(clippy::too_many_arguments)]
fn eval_order_key(
    db: &Database,
    s: &Select,
    bindings: &[Binding],
    columns: &[String],
    out_row: &[Value],
    ctx: &RowCtx,
    outer: Option<&Scope<'_>>,
    key: &Expr,
) -> ExecResult<Value> {
    // 1-based position reference.
    if let Expr::Literal(Literal::Int(k)) = key {
        let k = *k as usize;
        if k >= 1 && k <= out_row.len() {
            return Ok(out_row[k - 1].clone());
        }
    }
    // Alias or output-column-name reference.
    if let Expr::Column(c) = key {
        if c.table.is_none() {
            for (i, item) in s.items.iter().enumerate() {
                if let SelectItem::Expr { alias: Some(a), .. } = item {
                    if a.eq_ignore_ascii_case(&c.column) && i < out_row.len() {
                        return Ok(out_row[i].clone());
                    }
                }
            }
            // Column that is not resolvable from bindings but matches an
            // output column name (set-op style reference).
            let in_scope = bindings.iter().any(|b| {
                b.columns.iter().any(|col| col.eq_ignore_ascii_case(&c.column))
            });
            if !in_scope {
                if let Some(i) = columns.iter().position(|n| n.eq_ignore_ascii_case(&c.column)) {
                    return Ok(out_row[i].clone());
                }
            }
        }
    }
    // Expression identical to a select item reuses the projected value
    // (covers `ORDER BY COUNT(*)` without recomputation).
    for (i, item) in s.items.iter().enumerate() {
        if let SelectItem::Expr { expr, .. } = item {
            if expr == key && i < out_row.len() {
                return Ok(out_row[i].clone());
            }
        }
    }
    match ctx {
        RowCtx::Row(row) => {
            let scope = Scope { bindings, row, outer };
            eval_row(db, &scope, key)
        }
        RowCtx::Group(group) => eval_in_group(db, bindings, group, outer, key),
    }
}

/// Computes output column names.
fn output_columns(bindings: &[Binding], db: &Database, s: &Select) -> ExecResult<Vec<String>> {
    let _ = db;
    let mut out = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    out.extend(b.columns.iter().cloned());
                }
                if bindings.is_empty() {
                    out.push("*".to_string());
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let tl = t.to_ascii_lowercase();
                match bindings.iter().find(|b| b.effective == tl) {
                    Some(b) => out.extend(b.columns.iter().cloned()),
                    None => return Err(ExecError::UnknownTable(t.clone())),
                }
            }
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => out.push(a.clone()),
                None => out.push(expr_name(expr)),
            },
        }
    }
    Ok(out)
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.column.to_ascii_lowercase(),
        Expr::CountStar => "count(*)".to_string(),
        Expr::Function { name, args, .. } => match args.first() {
            Some(Expr::Column(c)) => format!("{}({})", name.to_ascii_lowercase(), c.column),
            _ => name.to_ascii_lowercase(),
        },
        _ => "expr".to_string(),
    }
}

fn expand_wildcard(
    item: &SelectItem,
    bindings: &[Binding],
    row: Option<&[Value]>,
    out: &mut Vec<Value>,
) {
    match item {
        SelectItem::Wildcard => {
            if let Some(row) = row {
                out.extend(row.iter().cloned());
            } else {
                for b in bindings {
                    out.extend(std::iter::repeat_n(Value::Null, b.columns.len()));
                }
            }
        }
        SelectItem::QualifiedWildcard(t) => {
            let tl = t.to_ascii_lowercase();
            if let Some(b) = bindings.iter().find(|b| b.effective == tl) {
                match row {
                    Some(row) => {
                        out.extend(row[b.offset..b.offset + b.columns.len()].iter().cloned())
                    }
                    None => out.extend(std::iter::repeat_n(Value::Null, b.columns.len())),
                }
            }
        }
        // INVARIANT: both call sites match on the item first and only
        // pass the two wildcard variants here.
        SelectItem::Expr { .. } => unreachable!("expand_wildcard called on expression item"),
    }
}

/// Builds the joined row set for a FROM clause. Inner equi-joins on column
/// pairs use a hash join; everything else falls back to nested loops.
fn build_from(
    db: &Database,
    from: &FromClause,
    outer: Option<&Scope<'_>>,
) -> ExecResult<(Vec<Binding>, Vec<Vec<Value>>)> {
    let base = db.table(&from.base.name)?;
    let mut bindings = vec![Binding {
        effective: from.base.effective_name().to_ascii_lowercase(),
        columns: base.def.columns.iter().map(|c| c.name.to_ascii_lowercase()).collect(),
        offset: 0,
    }];
    let mut rows: Vec<Vec<Value>> = base.rows.clone();
    for join in &from.joins {
        let right = db.table(&join.table.name)?;
        let right_cols: Vec<String> =
            right.def.columns.iter().map(|c| c.name.to_ascii_lowercase()).collect();
        let offset = bindings.last().map(|b| b.offset + b.columns.len()).unwrap_or(0);
        let right_binding = Binding {
            effective: join.table.effective_name().to_ascii_lowercase(),
            columns: right_cols.clone(),
            offset,
        };
        // Duplicate effective names make every later reference ambiguous;
        // report early with a clear message.
        if bindings.iter().any(|b| b.effective == right_binding.effective) {
            return Err(ExecError::AmbiguousColumn(format!(
                "duplicate table name or alias {} in FROM",
                right_binding.effective
            )));
        }
        match join.join_type {
            JoinType::Cross => {
                let mut out = Vec::new();
                for l in &rows {
                    for r in &right.rows {
                        let mut combined = l.clone();
                        combined.extend(r.iter().cloned());
                        out.push(combined);
                    }
                }
                // A dangling ON on a comma-join behaves like a filter-less
                // cartesian product; an explicit ON filters.
                bindings.push(right_binding);
                rows = out;
                if let Some(on) = &join.on {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        let scope = Scope { bindings: &bindings, row: &row, outer };
                        let v = eval_row(db, &scope, on)?;
                        if !v.is_null() && v.is_truthy() {
                            kept.push(row);
                        }
                    }
                    rows = kept;
                }
                continue;
            }
            JoinType::Inner | JoinType::Left | JoinType::Right => {
                let on = join.on.as_ref().ok_or_else(|| {
                    ExecError::DanglingJoin(join.table.effective_name().to_string())
                })?;
                // Try the hash-join fast path for a simple equi-join.
                let fast = equi_join_indices(on, &bindings, &right_binding);
                let joined = match fast {
                    Some((li, ri)) if join.join_type == JoinType::Inner => {
                        hash_inner_join(&rows, &right.rows, li, ri - offset)
                    }
                    _ => nested_join(
                        db,
                        &rows,
                        &right.rows,
                        &bindings,
                        &right_binding,
                        on,
                        join.join_type,
                        outer,
                    )?,
                };
                bindings.push(right_binding);
                rows = joined;
            }
        }
    }
    Ok((bindings, rows))
}

/// Recognises `left.col = right.col` ON conditions; returns (left row
/// index, absolute right index).
fn equi_join_indices(
    on: &Expr,
    left_bindings: &[Binding],
    right: &Binding,
) -> Option<(usize, usize)> {
    let Expr::Binary { op: BinaryOp::Eq, left, right: r } = on else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), r.as_ref()) else {
        return None;
    };
    let resolve = |c: &ColumnRef| -> Option<(bool, usize)> {
        // Returns (is_right_side, absolute index).
        let tl = c.table.as_ref()?.to_ascii_lowercase();
        if right.effective == tl {
            return right
                .columns
                .iter()
                .position(|n| n.eq_ignore_ascii_case(&c.column))
                .map(|i| (true, right.offset + i));
        }
        for bnd in left_bindings {
            if bnd.effective == tl {
                return bnd
                    .columns
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(&c.column))
                    .map(|i| (false, bnd.offset + i));
            }
        }
        None
    };
    let (sa, ia) = resolve(a)?;
    let (sb, ib) = resolve(b)?;
    match (sa, sb) {
        (false, true) => Some((ia, ib)),
        (true, false) => Some((ib, ia)),
        _ => None,
    }
}

fn hash_inner_join(
    left: &[Vec<Value>],
    right: &[Vec<Value>],
    left_idx: usize,
    right_local_idx: usize,
) -> Vec<Vec<Value>> {
    let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
    for (i, r) in right.iter().enumerate() {
        if r[right_local_idx].is_null() {
            continue;
        }
        table.entry(r[right_local_idx].group_key()).or_default().push(i);
    }
    let mut out = Vec::new();
    for l in left {
        if l[left_idx].is_null() {
            continue;
        }
        if let Some(matches) = table.get(&l[left_idx].group_key()) {
            for &ri in matches {
                let mut combined = l.clone();
                combined.extend(right[ri].iter().cloned());
                out.push(combined);
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn nested_join(
    db: &Database,
    left: &[Vec<Value>],
    right: &[Vec<Value>],
    left_bindings: &[Binding],
    right_binding: &Binding,
    on: &Expr,
    join_type: JoinType,
    outer: Option<&Scope<'_>>,
) -> ExecResult<Vec<Vec<Value>>> {
    let mut all_bindings: Vec<Binding> = left_bindings.to_vec();
    all_bindings.push(right_binding.clone());
    let right_width = right_binding.columns.len();
    let left_width = right_binding.offset;
    let mut out = Vec::new();
    let mut right_matched = vec![false; right.len()];
    for l in left {
        let mut matched = false;
        for (ri, r) in right.iter().enumerate() {
            let mut combined = l.clone();
            combined.extend(r.iter().cloned());
            let scope = Scope { bindings: &all_bindings, row: &combined, outer };
            let v = eval_row(db, &scope, on)?;
            if !v.is_null() && v.is_truthy() {
                matched = true;
                right_matched[ri] = true;
                out.push(combined);
            }
        }
        if !matched && join_type == JoinType::Left {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(combined);
        }
    }
    if join_type == JoinType::Right {
        for (ri, r) in right.iter().enumerate() {
            if !right_matched[ri] {
                let mut combined: Vec<Value> =
                    std::iter::repeat_n(Value::Null, left_width).collect();
                combined.extend(r.iter().cloned());
                out.push(combined);
            }
        }
    }
    Ok(out)
}
