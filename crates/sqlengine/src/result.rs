//! Query results and the execution-accuracy comparison.

use crate::value::Value;

/// A materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (aliases, expression text, or column names).
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// An empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet { columns, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Relative+absolute tolerance for float comparison, mirroring the test
/// suite evaluation's forgiveness for floating point noise.
const FLOAT_TOL: f64 = 1e-6;

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(y.abs()).max(1.0);
                (x - y).abs() <= FLOAT_TOL * scale
            }
            _ => false,
        },
    }
}

fn rows_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| values_equal(x, y))
}

/// The execution-accuracy criterion: two results match when they have the
/// same column count and the same multiset of rows — compared in order
/// when `ordered` (the gold query has ORDER BY), otherwise after sorting
/// both sides canonically. Column *names* are ignored, as in the Spider
/// test-suite metric.
pub fn results_match(a: &ResultSet, b: &ResultSet, ordered: bool) -> bool {
    if a.columns.len() != b.columns.len() || a.rows.len() != b.rows.len() {
        return false;
    }
    if ordered {
        a.rows.iter().zip(&b.rows).all(|(x, y)| rows_equal(x, y))
    } else {
        let mut ra = a.rows.clone();
        let mut rb = b.rows.clone();
        let cmp = |x: &Vec<Value>, y: &Vec<Value>| {
            x.iter()
                .zip(y.iter())
                .map(|(u, v)| u.cmp_total(v))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        ra.sort_by(cmp);
        rb.sort_by(cmp);
        ra.iter().zip(&rb).all(|(x, y)| rows_equal(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>) -> ResultSet {
        let n = rows.first().map(Vec::len).unwrap_or(1);
        ResultSet { columns: (0..n).map(|i| format!("c{i}")).collect(), rows }
    }

    #[test]
    fn unordered_match_ignores_row_order() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert!(results_match(&a, &b, false));
        assert!(!results_match(&a, &b, true));
    }

    #[test]
    fn float_tolerance() {
        let a = rs(vec![vec![Value::Float(0.333333333)]]);
        let b = rs(vec![vec![Value::Float(0.333333334)]]);
        assert!(results_match(&a, &b, false));
        let c = rs(vec![vec![Value::Float(0.34)]]);
        assert!(!results_match(&a, &c, false));
    }

    #[test]
    fn int_float_match() {
        let a = rs(vec![vec![Value::Int(5)]]);
        let b = rs(vec![vec![Value::Float(5.0)]]);
        assert!(results_match(&a, &b, false));
    }

    #[test]
    fn different_cardinality_never_matches() {
        let a = rs(vec![vec![Value::Int(1)]]);
        let b = rs(vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        assert!(!results_match(&a, &b, false));
    }

    #[test]
    fn column_names_are_ignored() {
        let a = ResultSet { columns: vec!["x".into()], rows: vec![vec![Value::Int(1)]] };
        let b = ResultSet { columns: vec!["y".into()], rows: vec![vec![Value::Int(1)]] };
        assert!(results_match(&a, &b, false));
    }

    #[test]
    fn nulls_match_nulls_only() {
        let a = rs(vec![vec![Value::Null]]);
        let b = rs(vec![vec![Value::Null]]);
        assert!(results_match(&a, &b, false));
        let c = rs(vec![vec![Value::Int(0)]]);
        assert!(!results_match(&a, &c, false));
    }

    #[test]
    fn multiset_duplicates_are_respected() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(2)]]);
        assert!(!results_match(&a, &b, false));
    }
}
